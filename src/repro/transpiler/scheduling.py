"""Gate-duration models and circuit scheduling.

The paper's duration metric is the *number* of two-qubit basis gates on the
critical path, with each ``n``-th-root iSWAP weighted ``1/n`` (Section 3.1
and 6.3).  This module generalises that to a wall-clock schedule:

* :class:`GateDurations` assigns a physical duration (in nanoseconds) to
  every gate, with presets for the three modulators the paper compares
  (SNAIL parametric drive, IBM cross-resonance, Google tunable coupler).
* :func:`schedule_asap` / :func:`schedule_alap` produce a
  :class:`Schedule` — start/stop times for every instruction under the
  as-soon-as-possible / as-late-as-possible disciplines.
* :class:`Schedule` reports total duration, per-qubit busy and idle time,
  and the parallelism profile, all of which feed the reliability study
  (:mod:`repro.core.reliability`).

Because the paper normalises away engineering maturity (Section 4.2), the
preset numbers are representative rather than calibrated: what matters for
the experiments is the *ratio* structure — e.g. that a SNAIL ``n``-th-root
iSWAP pulse scales like ``1/n`` of the full iSWAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import NthRootISwapGate


@dataclass
class GateDurations:
    """Maps instructions to durations in nanoseconds.

    Attributes:
        one_qubit: duration of any single-qubit gate.
        two_qubit_default: duration of a two-qubit gate not otherwise listed.
        by_name: per-gate-name overrides (e.g. ``{"cx": 300.0}``).
        iswap_full: duration of a full iSWAP; ``n``-th-root iSWAP gates are
            scheduled at ``iswap_full / n`` (paper Eq. 9).
        name: label used in reports.
    """

    one_qubit: float = 25.0
    two_qubit_default: float = 300.0
    by_name: Dict[str, float] = field(default_factory=dict)
    iswap_full: float = 400.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.one_qubit < 0.0 or self.two_qubit_default <= 0.0 or self.iswap_full <= 0.0:
            raise ValueError("durations must be positive (1Q may be zero)")
        for gate_name, duration in self.by_name.items():
            if duration < 0.0:
                raise ValueError(f"duration for {gate_name!r} must be non-negative")

    # -- presets --------------------------------------------------------------

    @classmethod
    def snail(cls) -> "GateDurations":
        """SNAIL parametric modulator: 1Q 25 ns, full iSWAP 400 ns, roots scale 1/n."""
        return cls(
            one_qubit=25.0,
            two_qubit_default=400.0,
            by_name={"swap": 600.0, "iswap": 400.0, "siswap": 200.0},
            iswap_full=400.0,
            name="snail",
        )

    @classmethod
    def cross_resonance(cls) -> "GateDurations":
        """IBM CR modulator: echoed CR CNOT around 300-450 ns."""
        return cls(
            one_qubit=35.0,
            two_qubit_default=370.0,
            by_name={"cx": 370.0, "swap": 3 * 370.0},
            iswap_full=740.0,
            name="cr",
        )

    @classmethod
    def tunable_coupler(cls) -> "GateDurations":
        """Google fSim coupler: SYC pulses are short (~12-30 ns) but serialised."""
        return cls(
            one_qubit=25.0,
            two_qubit_default=32.0,
            by_name={"syc": 32.0, "fsim": 32.0, "swap": 3 * 32.0},
            iswap_full=64.0,
            name="fsim",
        )

    @classmethod
    def for_modulator(cls, modulator: str) -> "GateDurations":
        """Preset lookup by modulator name ("SNAIL", "CR" or "FSIM")."""
        presets: Dict[str, Callable[[], GateDurations]] = {
            "snail": cls.snail,
            "cr": cls.cross_resonance,
            "fsim": cls.tunable_coupler,
        }
        key = modulator.lower()
        if key not in presets:
            raise ValueError(
                f"unknown modulator {modulator!r}; options: {sorted(presets)}"
            )
        return presets[key]()

    # -- lookup -------------------------------------------------------------------

    def duration_of(self, instruction: Instruction) -> float:
        """Duration (ns) of one instruction."""
        gate = instruction.gate
        if gate.name == "barrier":
            return 0.0
        if isinstance(gate, NthRootISwapGate) and gate.name not in self.by_name:
            return self.iswap_full / gate.root
        if gate.name in self.by_name:
            return self.by_name[gate.name]
        if gate.num_qubits == 1:
            return self.one_qubit
        return self.two_qubit_default


@dataclass(frozen=True)
class TimedInstruction:
    """An instruction with its scheduled start and stop times (ns)."""

    instruction: Instruction
    start: float
    stop: float

    @property
    def duration(self) -> float:
        """Scheduled duration."""
        return self.stop - self.start


class Schedule:
    """A timed view of a circuit under a given duration model."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        timed_instructions: Sequence[TimedInstruction],
        durations: GateDurations,
        discipline: str,
    ):
        self._circuit = circuit
        self._timed = list(timed_instructions)
        self._durations = durations
        self._discipline = discipline

    # -- structure ------------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        """The scheduled circuit."""
        return self._circuit

    @property
    def timed_instructions(self) -> List[TimedInstruction]:
        """Instructions with start/stop times, in start-time order."""
        return sorted(self._timed, key=lambda t: (t.start, t.stop))

    @property
    def discipline(self) -> str:
        """"asap" or "alap"."""
        return self._discipline

    def __len__(self) -> int:
        return len(self._timed)

    # -- aggregate metrics ------------------------------------------------------

    def total_duration(self) -> float:
        """Makespan of the schedule in nanoseconds."""
        return max((t.stop for t in self._timed), default=0.0)

    def qubit_busy_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends inside gate pulses."""
        return sum(t.duration for t in self._timed if qubit in t.instruction.qubits)

    def qubit_idle_time(self, qubit: int) -> float:
        """Time ``qubit`` spends idle between t=0 and the makespan."""
        return self.total_duration() - self.qubit_busy_time(qubit)

    def total_idle_time(self) -> float:
        """Sum of idle time over every qubit (the decoherence exposure)."""
        return sum(self.qubit_idle_time(q) for q in range(self._circuit.num_qubits))

    def average_parallelism(self) -> float:
        """Mean number of simultaneously running gates (barriers excluded)."""
        makespan = self.total_duration()
        if makespan <= 0.0:
            return 0.0
        busy_area = sum(t.duration for t in self._timed)
        return busy_area / makespan

    def two_qubit_duration(self) -> float:
        """Time spent in two-qubit pulses summed over all instructions."""
        return sum(t.duration for t in self._timed if t.instruction.is_two_qubit)

    def utilisation(self) -> float:
        """Fraction of qubit-time occupied by pulses (0..1)."""
        makespan = self.total_duration()
        if makespan <= 0.0:
            return 0.0
        total = makespan * self._circuit.num_qubits
        busy = sum(self.qubit_busy_time(q) for q in range(self._circuit.num_qubits))
        return busy / total

    def timeline(self, resolution: int = 100) -> np.ndarray:
        """Number of concurrently running gates sampled on a uniform grid."""
        makespan = self.total_duration()
        grid = np.linspace(0.0, makespan, num=max(2, resolution))
        counts = np.zeros_like(grid)
        for timed in self._timed:
            if timed.duration <= 0.0:
                continue
            counts += (grid >= timed.start) & (grid < timed.stop)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule({self._discipline}, instructions={len(self._timed)}, "
            f"duration={self.total_duration():.1f}ns)"
        )


def schedule_asap(circuit: QuantumCircuit, durations: GateDurations) -> Schedule:
    """Schedule every instruction as soon as its qubits are free."""
    frontier = [0.0] * circuit.num_qubits
    timed: List[TimedInstruction] = []
    for instruction in circuit:
        duration = durations.duration_of(instruction)
        start = max(frontier[q] for q in instruction.qubits)
        stop = start + duration
        for qubit in instruction.qubits:
            frontier[qubit] = stop
        timed.append(TimedInstruction(instruction, start, stop))
    return Schedule(circuit, timed, durations, discipline="asap")


def schedule_alap(circuit: QuantumCircuit, durations: GateDurations) -> Schedule:
    """Schedule every instruction as late as possible without stretching the makespan."""
    asap = schedule_asap(circuit, durations)
    makespan = asap.total_duration()
    frontier = [makespan] * circuit.num_qubits
    reversed_timed: List[TimedInstruction] = []
    for instruction in reversed(list(circuit)):
        duration = durations.duration_of(instruction)
        stop = min(frontier[q] for q in instruction.qubits)
        start = stop - duration
        for qubit in instruction.qubits:
            frontier[qubit] = start
        reversed_timed.append(TimedInstruction(instruction, start, stop))
    return Schedule(circuit, list(reversed(reversed_timed)), durations, discipline="alap")


def critical_path_duration(circuit: QuantumCircuit, durations: GateDurations) -> float:
    """Longest dependency chain measured in nanoseconds (no scheduling object)."""
    return float(circuit.depth(weight=durations.duration_of))
