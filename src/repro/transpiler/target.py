"""Target: the complete machine description the compiler addresses.

A :class:`Target` supersedes the thin ``(topology, basis)`` bundle of
:class:`repro.core.backend.Backend`: it carries everything a staged
compilation needs to know about a design point —

* the coupling topology (:class:`~repro.topology.coupling.CouplingMap`),
* the native two-qubit basis (:class:`~repro.decomposition.basis.BasisGateSpec`),
* per-gate physical durations (:class:`~repro.transpiler.scheduling.GateDurations`,
  defaulting to the preset matching the basis' modulator),
* optional per-edge noise / error rates (:class:`repro.core.noise.NoiseModel`),

so that experiments, the CLI and the runtime all address design points
uniformly.  :meth:`Target.from_names` builds one straight from the
topology and basis registries::

    target = Target.from_names("corral-1-1", "sqiswap")
    result = transpile(circuit, target, optimization_level=2)

Name lookup is forgiving about punctuation ("corral-1-1", "Corral1,1" and
"corral_1_1" all resolve to the same topology).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Hashable, Optional

from repro.decomposition.basis import BasisGateSpec, get_basis
from repro.topology.analysis import TopologyProperties, topology_properties
from repro.topology.coupling import CouplingMap
from repro.topology.registry import available_topologies, get_topology
from repro.transpiler.scheduling import GateDurations

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core builds on transpiler)
    from repro.core.noise import NoiseModel

#: Modulator name (BasisGateSpec.modulator) -> GateDurations preset key.
_MODULATOR_DURATIONS = {"SNAIL": "snail", "CR": "cr", "FSIM": "fsim"}


def _normalise(name: str) -> str:
    """Canonical form for registry lookup: lowercase alphanumerics only."""
    return "".join(ch for ch in name.lower() if ch.isalnum())


@dataclass
class Target:
    """A machine design point: topology + basis + durations + noise.

    Attributes:
        coupling_map: the device topology.
        basis: the hardware-native two-qubit basis gate.
        durations: physical gate durations; when ``None``, the preset for
            the basis' modulator is used (see :meth:`gate_durations`).
        noise_model: optional per-edge error rates; level-3 compilation
            routes noise-aware when this is set.
        name: label used in reports and cache keys.
        description: free-form provenance note.
    """

    coupling_map: CouplingMap
    basis: BasisGateSpec
    durations: Optional[GateDurations] = None
    noise_model: Optional["NoiseModel"] = None
    name: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.name is None:
            self.name = f"{self.coupling_map.name}-{self.basis.name}"

    # -- construction --------------------------------------------------------

    @classmethod
    def from_names(
        cls,
        topology: str,
        basis: str,
        scale: str = "small",
        durations: Optional[GateDurations] = None,
        noise_model: Optional["NoiseModel"] = None,
        name: Optional[str] = None,
    ) -> "Target":
        """Build a target from registry names.

        ``topology`` is matched against :func:`repro.topology.registry.
        available_topologies` ignoring case and punctuation, so
        ``"corral-1-1"`` resolves to ``"Corral1,1"``; ``basis`` accepts any
        :func:`repro.decomposition.basis.get_basis` name or alias (e.g.
        ``"sqiswap"`` for ``"siswap"``).
        """
        canonical: Dict[str, str] = {
            _normalise(registered): registered
            for registered in available_topologies(scale)
        }
        key = _normalise(topology)
        if key not in canonical:
            raise ValueError(
                f"unknown topology {topology!r} at scale {scale!r}; "
                f"available: {available_topologies(scale)}"
            )
        coupling_map = get_topology(canonical[key], scale=scale)
        return cls(
            coupling_map=coupling_map,
            basis=get_basis(basis),
            durations=durations,
            noise_model=noise_model,
            name=name,
            description=f"{canonical[key]} topology with {basis} basis gate ({scale})",
        )

    @classmethod
    def from_backend(cls, backend) -> "Target":
        """Adapt a legacy :class:`repro.core.backend.Backend` (or any object
        with ``coupling_map``/``basis``/``name`` attributes)."""
        if isinstance(backend, cls):
            return backend
        return cls(
            coupling_map=backend.coupling_map,
            basis=backend.basis,
            name=getattr(backend, "name", None),
            description=getattr(backend, "description", ""),
        )

    def with_noise(self, noise_model: "NoiseModel") -> "Target":
        """A copy of this target carrying ``noise_model``."""
        return replace(self, noise_model=noise_model)

    # -- structure -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self.coupling_map.num_qubits

    def properties(self) -> TopologyProperties:
        """Graph-structural properties of the topology (Tables 1-2 row)."""
        return topology_properties(self.coupling_map)

    def gate_durations(self) -> GateDurations:
        """Physical durations: explicit if set, else the modulator preset."""
        if self.durations is not None:
            return self.durations
        preset = _MODULATOR_DURATIONS.get(self.basis.modulator.upper())
        if preset is None:
            return GateDurations()
        return GateDurations.for_modulator(preset)

    # -- identity ------------------------------------------------------------

    def cache_key(self) -> Hashable:
        """Stable identity for result caching: name, basis, exact topology.

        The edge list participates through a digest so that two targets
        that merely share a name never collide; the noise model
        participates through its edge-fidelity table.
        """
        edges = ",".join(f"{a}-{b}" for a, b in self.coupling_map.edges())
        edge_digest = hashlib.sha256(edges.encode("ascii")).hexdigest()[:16]
        noise_token = ""
        if self.noise_model is not None:
            noise_token = repr(
                (
                    sorted(self.noise_model.edge_fidelity.items()),
                    self.noise_model.default_fidelity,
                    self.noise_model.idle_fidelity_per_pulse,
                )
            )
        noise_digest = hashlib.sha256(noise_token.encode("utf-8")).hexdigest()[:16]
        return (
            self.name,
            self.basis.name,
            self.coupling_map.num_qubits,
            edge_digest,
            noise_digest,
        )

    # -- compilation ---------------------------------------------------------

    def transpile(self, circuit, **options):
        """Compile ``circuit`` onto this target (see :func:`repro.transpiler.
        compile.transpile` for options such as ``optimization_level``)."""
        from repro.transpiler.compile import transpile

        return transpile(circuit, self, **options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        noise = ", noisy" if self.noise_model is not None else ""
        return (
            f"Target(name={self.name!r}, qubits={self.num_qubits}, "
            f"basis={self.basis.name!r}{noise})"
        )


def make_target(
    coupling_map: CouplingMap,
    basis_name: str,
    name: Optional[str] = None,
    noise_model: Optional["NoiseModel"] = None,
) -> Target:
    """Convenience constructor from a topology object and a basis name."""
    return Target(
        coupling_map=coupling_map,
        basis=get_basis(basis_name),
        noise_model=noise_model,
        name=name,
    )
