"""Terminal-friendly visualisation helpers.

The paper's figures are line charts of gate counts versus circuit size.
This module provides dependency-free renderers used by the examples and
the experiment harness:

* :func:`ascii_line_chart` — a multi-series scatter/line chart on a text
  canvas (one marker per series), good enough to see orderings and
  crossovers in a terminal;
* :func:`ascii_bar_chart` — horizontal bars for single-valued comparisons
  (e.g. the headline ratios);
* :func:`series_to_csv` / :func:`sweep_to_csv` — export helpers so the
  regenerated data can be re-plotted with any external tool.
"""

from __future__ import annotations

import io
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.pipeline import SweepResult

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "circuit size",
    y_label: str = "count",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as a text chart.

    Each series gets its own marker character; the legend maps markers back
    to labels.  Axis ranges are computed from the data.
    """
    points = [
        (float(x), float(y)) for values in series.values() for x, y in values
    ]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x, y in values:
            column = int(round((float(x) - x_min) / x_span * (width - 1)))
            row = int(round((float(y) - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][column] = marker
    buffer = io.StringIO()
    if title:
        buffer.write(title + "\n")
    buffer.write(f"{y_label} (top = {y_max:g}, bottom = {y_min:g})\n")
    for row in canvas:
        buffer.write("|" + "".join(row) + "|\n")
    buffer.write("+" + "-" * width + "+\n")
    buffer.write(f"{x_label}: {x_min:g} .. {x_max:g}\n")
    buffer.write("legend: " + ", ".join(legend))
    return buffer.getvalue()


def ascii_bar_chart(
    values: Mapping[str, float], width: int = 40, title: str = ""
) -> str:
    """Render ``{label: value}`` as horizontal bars."""
    if not values:
        return "(no data)"
    maximum = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / maximum * width)))
        lines.append(f"{str(label):<{label_width}}  {bar} {value:g}")
    return "\n".join(lines)


def ascii_schedule(schedule, width: int = 72, max_rows: int = 40) -> str:
    """Render a :class:`~repro.transpiler.scheduling.Schedule` as a text Gantt chart.

    One row per qubit; ``#`` marks time occupied by two-qubit pulses, ``-``
    by single-qubit pulses and spaces are idle time (the decoherence
    exposure the reliability model charges for).
    """
    makespan = schedule.total_duration()
    num_qubits = schedule.circuit.num_qubits
    if makespan <= 0.0:
        return "(empty schedule)"
    rows = [[" "] * width for _ in range(num_qubits)]
    for timed in schedule.timed_instructions:
        if timed.duration <= 0.0:
            continue
        start = int(timed.start / makespan * (width - 1))
        stop = max(start + 1, int(timed.stop / makespan * (width - 1)))
        marker = "#" if timed.instruction.is_two_qubit else "-"
        for qubit in timed.instruction.qubits:
            for column in range(start, min(stop, width)):
                rows[qubit][column] = marker
    lines = [
        f"schedule ({schedule.discipline}), makespan {makespan:.0f} ns, "
        f"parallelism {schedule.average_parallelism():.2f}"
    ]
    for qubit, row in enumerate(rows[:max_rows]):
        lines.append(f"q{qubit:>3} |{''.join(row)}|")
    if num_qubits > max_rows:
        lines.append(f"... ({num_qubits - max_rows} more qubits)")
    return "\n".join(lines)


def series_to_csv(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Serialise a series mapping to CSV text (label, x, y)."""
    lines = [f"series,{x_name},{y_name}"]
    for label, values in series.items():
        for x, y in values:
            lines.append(f"{label},{x},{y}")
    return "\n".join(lines) + "\n"


def sweep_to_csv(result: SweepResult, columns: Optional[Sequence[str]] = None) -> str:
    """Serialise a :class:`SweepResult` to CSV text."""
    rows = result.as_dicts()
    if not rows:
        return ""
    if columns is None:
        columns = sorted({key for row in rows for key in row})

    def _cell(value) -> str:
        # RFC-4180-style quoting for values containing separators (e.g. the
        # nested ``stage_times`` mapping in the metric extras).
        text = str(value)
        if any(ch in text for ch in ",\"\n"):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(_cell(column) for column in columns)]
    for row in rows:
        lines.append(",".join(_cell(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"
