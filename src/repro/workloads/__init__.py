"""Parameterised NISQ benchmark workloads (paper Section 5)."""

from repro.workloads.adder import (
    adder_circuit_for_width,
    adder_register_layout,
    cdkm_adder_circuit,
)
from repro.workloads.bernstein_vazirani import bernstein_vazirani_circuit
from repro.workloads.ghz import ghz_circuit
from repro.workloads.hamiltonian import tim_hamiltonian_circuit
from repro.workloads.qaoa import qaoa_vanilla_circuit, sk_couplings
from repro.workloads.qft import qft_circuit, qft_unitary
from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.registry import (
    ADDER,
    BERNSTEIN_VAZIRANI,
    EXTENSION_WORKLOADS,
    GHZ,
    PAPER_WORKLOADS,
    QAOA_VANILLA,
    QFT,
    QUANTUM_VOLUME,
    TIM_HAMILTONIAN,
    VQE_ANSATZ,
    W_STATE,
    available_workloads,
    build_workload,
    register_workload,
)
from repro.workloads.vqe import hardware_efficient_ansatz
from repro.workloads.wstate import w_state_circuit

__all__ = [
    "adder_circuit_for_width",
    "adder_register_layout",
    "cdkm_adder_circuit",
    "bernstein_vazirani_circuit",
    "ghz_circuit",
    "tim_hamiltonian_circuit",
    "qaoa_vanilla_circuit",
    "sk_couplings",
    "qft_circuit",
    "qft_unitary",
    "quantum_volume_circuit",
    "hardware_efficient_ansatz",
    "w_state_circuit",
    "ADDER",
    "BERNSTEIN_VAZIRANI",
    "EXTENSION_WORKLOADS",
    "GHZ",
    "PAPER_WORKLOADS",
    "QAOA_VANILLA",
    "QFT",
    "QUANTUM_VOLUME",
    "TIM_HAMILTONIAN",
    "VQE_ANSATZ",
    "W_STATE",
    "available_workloads",
    "build_workload",
    "register_workload",
]
