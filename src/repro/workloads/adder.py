"""CDKM ripple-carry adder workload.

Implements the Cuccaro-Draper-Kutin-Moulton ripple-carry adder the paper
takes from Qiskit's circuit library.  The register layout is

    [carry-in, a_0 .. a_{k-1}, b_0 .. b_{k-1}, carry-out]

(``2k + 2`` qubits in total); after the circuit, the ``b`` register holds
``a + b`` (mod ``2^k``) with the carry-out qubit holding the overflow bit.
"""

from __future__ import annotations

from typing import Tuple

from repro.circuits.circuit import QuantumCircuit


def adder_register_layout(num_state_qubits: int) -> Tuple[int, range, range, int]:
    """Qubit indices ``(carry_in, a_register, b_register, carry_out)``."""
    carry_in = 0
    a_register = range(1, 1 + num_state_qubits)
    b_register = range(1 + num_state_qubits, 1 + 2 * num_state_qubits)
    carry_out = 1 + 2 * num_state_qubits
    return carry_in, a_register, b_register, carry_out


def _majority(circuit: QuantumCircuit, carry: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, carry)
    circuit.ccx(carry, b, a)


def _unmajority(circuit: QuantumCircuit, carry: int, b: int, a: int) -> None:
    circuit.ccx(carry, b, a)
    circuit.cx(a, carry)
    circuit.cx(carry, b)


def cdkm_adder_circuit(num_state_qubits: int) -> QuantumCircuit:
    """Full CDKM ripple-carry adder on ``2 * num_state_qubits + 2`` qubits."""
    if num_state_qubits < 1:
        raise ValueError("the adder needs at least one state qubit per register")
    carry_in, a_register, b_register, carry_out = adder_register_layout(num_state_qubits)
    circuit = QuantumCircuit(
        2 * num_state_qubits + 2, name=f"Adder-{2 * num_state_qubits + 2}"
    )
    a_list = list(a_register)
    b_list = list(b_register)
    _majority(circuit, carry_in, b_list[0], a_list[0])
    for index in range(1, num_state_qubits):
        _majority(circuit, a_list[index - 1], b_list[index], a_list[index])
    circuit.cx(a_list[-1], carry_out)
    for index in range(num_state_qubits - 1, 0, -1):
        _unmajority(circuit, a_list[index - 1], b_list[index], a_list[index])
    _unmajority(circuit, carry_in, b_list[0], a_list[0])
    circuit.metadata.update(
        {"workload": "Adder", "num_state_qubits": num_state_qubits}
    )
    return circuit


def adder_circuit_for_width(num_qubits: int) -> QuantumCircuit:
    """Largest CDKM adder fitting in ``num_qubits`` qubits (width >= 4)."""
    if num_qubits < 4:
        raise ValueError("the smallest CDKM adder uses four qubits")
    num_state_qubits = (num_qubits - 2) // 2
    return cdkm_adder_circuit(num_state_qubits)
