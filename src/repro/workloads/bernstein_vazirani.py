"""Bernstein–Vazirani workload (extension beyond the paper's six benchmarks).

The circuit recovers a hidden bit string with a single oracle query.  Its
interaction pattern is a star centred on the ancilla qubit, which makes it
a useful stress test for hub-style topologies (the Tree's router qubits)
and a natural companion to GHZ in the extension benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def bernstein_vazirani_circuit(
    num_qubits: int,
    secret: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> QuantumCircuit:
    """Bernstein–Vazirani circuit on ``num_qubits`` qubits (data + 1 ancilla).

    Args:
        num_qubits: total width; the last qubit is the oracle ancilla, the
            remaining ``num_qubits - 1`` hold the hidden string.
        secret: explicit hidden bit string (length ``num_qubits - 1``);
            sampled uniformly from the given ``seed`` when omitted.
        seed: RNG seed used when ``secret`` is not supplied.
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least two qubits")
    data_qubits = num_qubits - 1
    if secret is None:
        rng = np.random.default_rng(seed)
        secret = [int(bit) for bit in rng.integers(0, 2, size=data_qubits)]
    else:
        secret = [int(bit) for bit in secret]
        if len(secret) != data_qubits:
            raise ValueError(
                f"secret must have length {data_qubits}, got {len(secret)}"
            )
        if any(bit not in (0, 1) for bit in secret):
            raise ValueError("secret must be a bit string")
    ancilla = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, name=f"BernsteinVazirani-{num_qubits}")
    for qubit in range(data_qubits):
        circuit.h(qubit)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit, bit in enumerate(secret):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(data_qubits):
        circuit.h(qubit)
    circuit.metadata.update(
        {"workload": "BernsteinVazirani", "secret": tuple(secret)}
    )
    return circuit
