"""GHZ-state preparation workload."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int, linear: bool = True) -> QuantumCircuit:
    """Prepare an ``n``-qubit GHZ state.

    Args:
        num_qubits: state size.
        linear: use the nearest-neighbour CNOT chain (the SupermarQ / paper
            construction).  When ``False``, a log-depth fan-out tree of
            CNOTs is used instead (useful for depth comparisons).
    """
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"GHZ-{num_qubits}")
    circuit.h(0)
    if linear:
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    else:
        filled = 1
        while filled < num_qubits:
            for source in range(min(filled, num_qubits - filled)):
                circuit.cx(source, filled + source)
            filled *= 2
    circuit.metadata.update({"workload": "GHZ", "linear": linear})
    return circuit
