"""Transverse-field Ising model (TIM) Hamiltonian-simulation workload.

Follows the SupermarQ ``HamiltonianSimulation`` benchmark the paper uses:
first-order Trotterised time evolution of a 1-D transverse-field Ising
chain.  Being a nearest-neighbour chain, it stresses topologies far less
than QAOA — the paper uses it as the "easy" end of the workload spectrum.
"""

from __future__ import annotations


from repro.circuits.circuit import QuantumCircuit


def tim_hamiltonian_circuit(
    num_qubits: int,
    time_steps: int = 1,
    total_time: float = 1.0,
    field_strength: float = 0.2,
    coupling_strength: float = 1.0,
    seed: int = 0,
) -> QuantumCircuit:
    """Trotterised evolution under ``H = J sum Z_i Z_{i+1} + h sum X_i``.

    Args:
        num_qubits: chain length.
        time_steps: number of first-order Trotter steps.
        total_time: total evolution time.
        field_strength: transverse field ``h``.
        coupling_strength: Ising coupling ``J``.
        seed: kept for registry uniformity (the circuit is deterministic).
    """
    if num_qubits < 2:
        raise ValueError("the Ising chain needs at least two qubits")
    delta = total_time / time_steps
    circuit = QuantumCircuit(num_qubits, name=f"TIMHamiltonian-{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(time_steps):
        for qubit in range(num_qubits - 1):
            circuit.rzz(2.0 * coupling_strength * delta, qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * field_strength * delta, qubit)
    circuit.metadata.update(
        {
            "workload": "TIMHamiltonian",
            "time_steps": time_steps,
            "total_time": total_time,
        }
    )
    return circuit
