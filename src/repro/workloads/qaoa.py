"""QAOA "vanilla" proxy workload (Sherrington-Kirkpatrick model).

Follows the SupermarQ ``QAOAVanillaProxy`` benchmark the paper uses: a
single QAOA layer (p = 1) for the fully connected Sherrington-Kirkpatrick
Hamiltonian with random +/-1 couplings — every qubit pair interacts, which
makes the workload extremely sensitive to topology connectivity (it drives
the largest SWAP counts in paper Fig. 4).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def sk_couplings(num_qubits: int, seed: int = 0) -> Dict[Tuple[int, int], float]:
    """Random +/-1 couplings of the fully connected SK model."""
    rng = np.random.default_rng(seed)
    couplings: Dict[Tuple[int, int], float] = {}
    for qubit_a in range(num_qubits):
        for qubit_b in range(qubit_a + 1, num_qubits):
            couplings[(qubit_a, qubit_b)] = float(rng.choice((-1.0, 1.0)))
    return couplings


def qaoa_vanilla_circuit(
    num_qubits: int,
    layers: int = 1,
    seed: int = 0,
    gamma: Optional[float] = None,
    beta: Optional[float] = None,
) -> QuantumCircuit:
    """QAOA ansatz for the SK model.

    Args:
        num_qubits: problem size.
        layers: number of QAOA layers ``p`` (the proxy uses 1).
        seed: controls the random couplings and, when the angles are not
            given, the variational parameters.
        gamma, beta: fixed cost / mixer angles (random in ``(0, pi)`` when
            omitted, one pair per layer).
    """
    if num_qubits < 2:
        raise ValueError("QAOA needs at least two qubits")
    rng = np.random.default_rng(seed + 1)
    couplings = sk_couplings(num_qubits, seed)
    circuit = QuantumCircuit(num_qubits, name=f"QAOAVanilla-{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        layer_gamma = gamma if gamma is not None else float(rng.uniform(0, np.pi))
        layer_beta = beta if beta is not None else float(rng.uniform(0, np.pi))
        for (qubit_a, qubit_b), weight in couplings.items():
            circuit.rzz(2.0 * layer_gamma * weight, qubit_a, qubit_b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * layer_beta, qubit)
    circuit.metadata.update(
        {"workload": "QAOAVanilla", "layers": layers, "seed": seed}
    )
    return circuit
