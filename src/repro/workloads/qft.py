"""Quantum Fourier Transform circuits."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def qft_circuit(
    num_qubits: int, do_swaps: bool = False, approximation_degree: int = 0
) -> QuantumCircuit:
    """Standard QFT: Hadamards plus controlled-phase ladder.

    Args:
        num_qubits: circuit width.
        do_swaps: include the final qubit-reversal SWAP network.  The paper
            counts routing-induced SWAPs, so the default omits the reversal
            (the reversal can always be absorbed into a relabelling).
        approximation_degree: drop controlled phases with angle smaller
            than ``pi / 2**(num_qubits - approximation_degree)`` (0 keeps
            every rotation, the exact QFT).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"QFT-{num_qubits}")
    for target in range(num_qubits - 1, -1, -1):
        circuit.h(target)
        for control in range(target - 1, -1, -1):
            control_offset = target - control
            if approximation_degree and control_offset > num_qubits - approximation_degree:
                continue
            angle = np.pi / (2 ** control_offset)
            circuit.cp(angle, control, target)
    if do_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    circuit.metadata.update({"workload": "QFT", "do_swaps": do_swaps})
    return circuit


def qft_unitary(num_qubits: int) -> np.ndarray:
    """Reference DFT matrix (little-endian, with the qubit-reversal swaps).

    ``qft_circuit(n, do_swaps=True)`` implements this matrix exactly; used
    by the test-suite to validate the construction.
    """
    dim = 2 ** num_qubits
    omega = np.exp(2j * np.pi / dim)
    indices = np.arange(dim)
    return omega ** np.outer(indices, indices) / np.sqrt(dim)
