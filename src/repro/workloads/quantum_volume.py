"""Quantum Volume model circuits.

A Quantum Volume circuit on ``n`` qubits consists of ``depth`` layers; each
layer applies a random permutation of the qubits and a Haar-random SU(4)
block to every adjacent pair of the permutation (Cross et al., 2019).  The
paper uses QV as its primary scaling benchmark (Figs. 4 and 11-14 and the
headline 2.57x / 5.63x / 3.16x / 6.11x comparisons).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.linalg.random import random_unitary


def quantum_volume_circuit(
    num_qubits: int, depth: Optional[int] = None, seed: int = 0
) -> QuantumCircuit:
    """Build a Quantum Volume circuit.

    Args:
        num_qubits: circuit width.
        depth: number of permutation + SU(4) layers; defaults to
            ``num_qubits`` (the square QV convention).
        seed: RNG seed controlling permutations and SU(4) blocks.
    """
    if num_qubits < 2:
        raise ValueError("Quantum Volume circuits need at least two qubits")
    depth = num_qubits if depth is None else int(depth)
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"QuantumVolume-{num_qubits}")
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for pair_index in range(num_qubits // 2):
            qubit_a = int(permutation[2 * pair_index])
            qubit_b = int(permutation[2 * pair_index + 1])
            block = random_unitary(4, rng)
            circuit.unitary(block, (qubit_a, qubit_b), label="su4")
    circuit.metadata.update({"workload": "QuantumVolume", "depth": depth, "seed": seed})
    return circuit
