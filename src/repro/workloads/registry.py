"""Workload registry: the six parameterised benchmarks of the paper.

The paper's evaluation (Section 5) uses QuantumVolume, QFT and the CDKM
ripple-carry adder from Qiskit plus QAOA-Vanilla, TIM Hamiltonian
simulation and GHZ from SupermarQ, all parameterised by qubit count.  The
registry exposes them behind one uniform ``build(name, num_qubits, seed)``
interface used by the experiment harness and the benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.workloads.adder import adder_circuit_for_width
from repro.workloads.bernstein_vazirani import bernstein_vazirani_circuit
from repro.workloads.ghz import ghz_circuit
from repro.workloads.hamiltonian import tim_hamiltonian_circuit
from repro.workloads.qaoa import qaoa_vanilla_circuit
from repro.workloads.qft import qft_circuit
from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.vqe import hardware_efficient_ansatz
from repro.workloads.wstate import w_state_circuit

#: Canonical workload names, matching the paper's figure panels.
QUANTUM_VOLUME = "QuantumVolume"
QFT = "QFT"
QAOA_VANILLA = "QAOAVanilla"
TIM_HAMILTONIAN = "TIMHamiltonian"
ADDER = "Adder"
GHZ = "GHZ"

#: Extension workloads (not part of the paper's six benchmark panels).
BERNSTEIN_VAZIRANI = "BernsteinVazirani"
VQE_ANSATZ = "VQEAnsatz"
W_STATE = "WState"

_BUILDERS: Dict[str, Callable[[int, int], QuantumCircuit]] = {
    QUANTUM_VOLUME: lambda n, seed: quantum_volume_circuit(n, seed=seed),
    QFT: lambda n, seed: qft_circuit(n),
    QAOA_VANILLA: lambda n, seed: qaoa_vanilla_circuit(n, seed=seed),
    TIM_HAMILTONIAN: lambda n, seed: tim_hamiltonian_circuit(n),
    ADDER: lambda n, seed: adder_circuit_for_width(n),
    GHZ: lambda n, seed: ghz_circuit(n),
    BERNSTEIN_VAZIRANI: lambda n, seed: bernstein_vazirani_circuit(n, seed=seed),
    VQE_ANSATZ: lambda n, seed: hardware_efficient_ansatz(n, seed=seed),
    W_STATE: lambda n, seed: w_state_circuit(n),
}

#: Workloads in the order the paper's figure columns use.
PAPER_WORKLOADS: List[str] = [
    QUANTUM_VOLUME,
    QFT,
    QAOA_VANILLA,
    TIM_HAMILTONIAN,
    ADDER,
    GHZ,
]

#: Additional workloads provided beyond the paper's evaluation set.
EXTENSION_WORKLOADS: List[str] = [
    BERNSTEIN_VAZIRANI,
    VQE_ANSATZ,
    W_STATE,
]


def available_workloads() -> List[str]:
    """All registered workload names."""
    return sorted(_BUILDERS)


def build_workload(name: str, num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """Build a workload instance by name and width."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        )
    return _BUILDERS[name](num_qubits, seed)


def register_workload(
    name: str, builder: Callable[[int, int], QuantumCircuit], overwrite: bool = False
) -> None:
    """Register a custom workload builder (for user extensions)."""
    if name in _BUILDERS and not overwrite:
        raise ValueError(f"workload {name!r} is already registered")
    _BUILDERS[name] = builder
