"""Hardware-efficient VQE ansatz workload (extension benchmark).

The paper excludes VQE from its headline benchmarks because problem
instances are hand-coded (Section 5); the hardware-efficient ansatz,
however, *is* parameterisable by width, so it is included here as an
extension workload: alternating layers of single-qubit Euler rotations and
a ring (or line) of entangling gates, the structure used by Kandala et al.
and by most NISQ-era variational experiments.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def hardware_efficient_ansatz(
    num_qubits: int,
    layers: int = 2,
    entangler: str = "cx",
    ring: bool = True,
    seed: int = 0,
) -> QuantumCircuit:
    """Hardware-efficient variational ansatz.

    Args:
        num_qubits: circuit width.
        layers: number of (rotation layer, entangling layer) repetitions.
        entangler: "cx", "cz" or "siswap" — the two-qubit gate used in the
            entangling layers.
        ring: close the entangling chain into a ring (adds one long-range
            gate per layer, which stresses sparse topologies).
        seed: RNG seed for the rotation angles.
    """
    if num_qubits < 2:
        raise ValueError("the ansatz needs at least two qubits")
    if layers < 1:
        raise ValueError("the ansatz needs at least one layer")
    appenders = {
        "cx": lambda circuit, a, b: circuit.cx(a, b),
        "cz": lambda circuit, a, b: circuit.cz(a, b),
        "siswap": lambda circuit, a, b: circuit.siswap(a, b),
    }
    if entangler not in appenders:
        raise ValueError(f"unknown entangler {entangler!r}; options: {sorted(appenders)}")
    entangle = appenders[entangler]
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"VQEAnsatz-{num_qubits}")
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(-np.pi, np.pi)), qubit)
        circuit.rz(float(rng.uniform(-np.pi, np.pi)), qubit)
    for _ in range(layers):
        for qubit in range(num_qubits - 1):
            entangle(circuit, qubit, qubit + 1)
        if ring and num_qubits > 2:
            entangle(circuit, num_qubits - 1, 0)
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(-np.pi, np.pi)), qubit)
            circuit.rz(float(rng.uniform(-np.pi, np.pi)), qubit)
    circuit.metadata.update(
        {"workload": "VQEAnsatz", "layers": layers, "entangler": entangler, "ring": ring}
    )
    return circuit
