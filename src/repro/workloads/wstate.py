"""W-state preparation workload (extension benchmark).

The W state ``(|100...0> + |010...0> + ... + |000...1>) / sqrt(n)`` is the
other canonical multipartite entangled state next to GHZ.  The standard
linear construction uses a chain of controlled Ry rotations followed by
CNOTs, giving a nearest-neighbour interaction pattern of depth ``O(n)``
whose 2Q-gate structure differs from GHZ (two 2Q gates per link instead of
one), which makes it a useful additional data point for topology studies.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.gates import RYGate, UnitaryGate


def _controlled_ry(theta: float) -> UnitaryGate:
    """Controlled-Ry as an explicit 4x4 unitary (control = first qubit)."""
    ry = RYGate(theta).matrix()
    matrix = np.eye(4, dtype=complex)
    matrix[2:, 2:] = ry
    return UnitaryGate(matrix, label="cry")


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare the ``n``-qubit W state with the linear CRy / CNOT cascade."""
    if num_qubits < 2:
        raise ValueError("a W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"WState-{num_qubits}")
    circuit.x(0)
    # At step k the excitation is shared between qubit k and qubits k+1..n-1:
    # rotate a (1/remaining)-sized amplitude onto qubit k+1, then shift the
    # remainder along with a CNOT.
    for qubit in range(num_qubits - 1):
        remaining = num_qubits - qubit
        theta = 2.0 * np.arccos(np.sqrt(1.0 / remaining))
        circuit.append(_controlled_ry(theta), (qubit, qubit + 1))
        circuit.cx(qubit + 1, qubit)
    circuit.metadata.update({"workload": "WState"})
    return circuit
