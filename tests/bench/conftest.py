"""Shared fixtures for the bench-observability suite."""

from __future__ import annotations

import json
from pathlib import Path

import pytest


@pytest.fixture
def make_artifact(tmp_path):
    """Factory writing pytest-benchmark-style JSON artifacts to tmp_path.

    ``make_artifact({"test_a": 0.5}, name="BENCH_one.json", sha="abc")``
    returns the written path.  ``rounds``/``sha``/``host``/``datetime``
    shape the stock pytest-benchmark fields; ``extra`` merges arbitrary
    keys into the top-level object (e.g. a ``repro_run_meta`` block).
    """

    def _make(
        means,
        *,
        name="BENCH_test.json",
        rounds=None,
        sha=None,
        host="ci-host",
        datetime="2026-08-08T00:00:00",
        extra=None,
    ) -> Path:
        benchmarks = []
        for bench_name, mean in means.items():
            stats = {"mean": mean}
            if rounds and bench_name in rounds:
                stats["rounds"] = rounds[bench_name]
            benchmarks.append({"name": bench_name, "stats": stats})
        payload = {
            "machine_info": {"node": host},
            "datetime": datetime,
            "benchmarks": benchmarks,
        }
        if sha is not None:
            payload["commit_info"] = {"id": sha}
        if extra:
            payload.update(extra)
        path = tmp_path / name
        path.write_text(json.dumps(payload, indent=2), "utf-8")
        return path

    return _make
