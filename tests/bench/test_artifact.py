"""Hardened artifact loading: round-trips, named errors, provenance."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    MalformedArtifactError,
    current_git_sha,
    load_means,
    read_artifact,
)


class TestLoadMeans:
    def test_round_trip(self, make_artifact):
        path = make_artifact({"test_a": 0.5, "test_b": 0.125})
        assert load_means(path) == {"test_a": 0.5, "test_b": 0.125}

    def test_rounds_captured(self, make_artifact):
        path = make_artifact({"test_a": 0.5}, rounds={"test_a": 7})
        artifact = read_artifact(path)
        assert artifact.rounds == {"test_a": 7}
        assert len(artifact) == 1

    def test_empty_benchmarks_is_not_an_error(self, make_artifact):
        assert load_means(make_artifact({})) == {}


class TestMalformedArtifacts:
    """A bad entry raises a named error identifying the entry — no KeyError."""

    def _write(self, tmp_path, payload):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(payload), "utf-8")
        return path

    def test_missing_mean_names_the_entry(self, tmp_path):
        path = self._write(
            tmp_path,
            {"benchmarks": [
                {"name": "test_ok", "stats": {"mean": 0.1}},
                {"name": "test_broken", "stats": {"min": 0.1}},
            ]},
        )
        with pytest.raises(MalformedArtifactError, match=r"entry #1.*test_broken.*stats\.mean"):
            load_means(path)

    def test_missing_stats(self, tmp_path):
        path = self._write(tmp_path, {"benchmarks": [{"name": "test_x"}]})
        with pytest.raises(MalformedArtifactError, match="'stats'"):
            load_means(path)

    def test_missing_name(self, tmp_path):
        path = self._write(tmp_path, {"benchmarks": [{"stats": {"mean": 1.0}}]})
        with pytest.raises(MalformedArtifactError, match="entry #0"):
            load_means(path)

    def test_non_numeric_mean(self, tmp_path):
        path = self._write(
            tmp_path, {"benchmarks": [{"name": "test_x", "stats": {"mean": "fast"}}]}
        )
        with pytest.raises(MalformedArtifactError, match="non-numeric"):
            load_means(path)

    def test_nan_mean_rejected(self, tmp_path):
        path = tmp_path / "BENCH_nan.json"
        path.write_text('{"benchmarks": [{"name": "test_x", "stats": {"mean": NaN}}]}')
        with pytest.raises(MalformedArtifactError, match="finite"):
            load_means(path)

    def test_negative_mean_rejected(self, tmp_path):
        path = self._write(
            tmp_path, {"benchmarks": [{"name": "test_x", "stats": {"mean": -1.0}}]}
        )
        with pytest.raises(MalformedArtifactError, match="non-negative"):
            load_means(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_torn.json"
        path.write_text('{"benchmarks": [')
        with pytest.raises(MalformedArtifactError, match="invalid JSON"):
            load_means(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(MalformedArtifactError, match="unreadable"):
            load_means(tmp_path / "nope.json")

    def test_benchmarks_not_a_list(self, tmp_path):
        path = self._write(tmp_path, {"benchmarks": {"test_x": 1.0}})
        with pytest.raises(MalformedArtifactError, match="must be a list"):
            load_means(path)


class TestProvenance:
    def test_meta_from_stock_fields(self, make_artifact):
        path = make_artifact({"test_a": 0.5}, sha="deadbeef", host="runner-7")
        meta = read_artifact(path).meta
        assert meta.git_sha == "deadbeef"
        assert meta.host == "runner-7"
        assert meta.timestamp == "2026-08-08T00:00:00"
        assert meta.source == path.name

    def test_injected_repro_run_meta_wins(self, make_artifact):
        path = make_artifact(
            {"test_a": 0.5},
            sha="stock-sha",
            extra={"repro_run_meta": {"git_sha": "injected-sha", "host": "lab"}},
        )
        meta = read_artifact(path).meta
        assert meta.git_sha == "injected-sha"
        assert meta.host == "lab"

    def test_describe_marks_unknown_fields(self, make_artifact):
        path = make_artifact({"test_a": 0.5}, host=None, datetime=None)
        described = read_artifact(path).meta.describe()
        assert "sha=unknown" in described and "host=unknown" in described

    def test_current_git_sha_in_this_repo(self):
        sha = current_git_sha()
        assert sha is None or (len(sha) >= 7 and all(c in "0123456789abcdef" for c in sha))

    def test_current_git_sha_outside_a_repo(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        assert current_git_sha(cwd=tmp_path) is None

    def test_github_sha_env_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "envsha123")
        assert current_git_sha() == "envsha123"
