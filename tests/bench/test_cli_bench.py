"""The `repro bench` verbs: record → report → check round trips."""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchHistory, sparkline
from repro.cli import main


class TestParser:
    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bench"])

    def test_unknown_bench_verb_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "trend"])


class TestRecord:
    def test_record_appends_and_reports(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"a": 1.0}, sha="cli-sha-123456")
        hist = tmp_path / "hist"
        assert main(["bench", "record", str(artifact), "--history-dir", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "recorded run #1" in out and "1 benchmark(s)" in out
        assert "sha=cli-sha-1234" in out
        assert BenchHistory(hist).names() == ["a"]

    def test_record_env_var_default(self, make_artifact, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "env-hist"))
        artifact = make_artifact({"a": 1.0})
        assert main(["bench", "record", str(artifact)]) == 0
        assert BenchHistory(tmp_path / "env-hist").names() == ["a"]

    def test_record_malformed_artifact_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"benchmarks": [{"name": "x", "stats": {}}]}')
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "record", str(bad), "--history-dir", str(tmp_path / "h")])
        assert excinfo.value.code == 2
        assert "stats.mean" in capsys.readouterr().err

    def test_record_overrides(self, make_artifact, tmp_path):
        artifact = make_artifact({"a": 1.0}, sha="artifact-sha")
        hist = tmp_path / "hist"
        main(
            [
                "bench", "record", str(artifact), "--history-dir", str(hist),
                "--sha", "override-sha", "--host", "bench-box",
                "--timestamp", "2026-03-03T12:00:00",
            ]
        )
        run = BenchHistory(hist).runs()[0]
        assert run["git_sha"] == "override-sha"
        assert run["host"] == "bench-box"
        assert run["timestamp"] == "2026-03-03T12:00:00"


class TestReport:
    def _record(self, means_by_run, make_artifact, hist):
        for means in means_by_run:
            assert main(
                ["bench", "record", str(make_artifact(means)), "--history-dir", str(hist)]
            ) == 0

    def test_empty_history_report(self, tmp_path, capsys):
        assert main(["bench", "report", "--history-dir", str(tmp_path / "h")]) == 0
        assert "empty history" in capsys.readouterr().out

    def test_terminal_report_shows_trajectory(self, make_artifact, tmp_path, capsys):
        hist = tmp_path / "hist"
        self._record([{"a": 1.0}, {"a": 1.1}, {"a": 0.9}], make_artifact, hist)
        capsys.readouterr()
        assert main(["bench", "report", "--history-dir", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "3 run(s), 1 benchmark(s)" in out
        assert "a" in out and "1.000s" in out
        assert any(level in out for level in "▁▂▃▄▅▆▇█")

    def test_markdown_report_is_a_table(self, make_artifact, tmp_path, capsys):
        hist = tmp_path / "hist"
        self._record([{"a": 1.0}, {"a": 2.0}], make_artifact, hist)
        capsys.readouterr()
        assert main(["bench", "report", "--markdown", "--history-dir", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark trajectory" in out
        assert "| benchmark | runs | trend |" in out
        assert "| a | 2 |" in out
        assert "+100.0%" in out

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▄▄▄"
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"


class TestCheck:
    def test_check_passes_on_steady_history(self, make_artifact, tmp_path, capsys):
        hist = tmp_path / "hist"
        for means in ({"a": 1.0}, {"a": 1.05}, {"a": 0.95}):
            main(["bench", "record", str(make_artifact(means)), "--history-dir", str(hist)])
        capsys.readouterr()
        assert main(["bench", "check", "--history-dir", str(hist)]) == 0
        assert "bench check" in capsys.readouterr().out

    def test_check_passes_with_insufficient_history(self, make_artifact, tmp_path, capsys):
        hist = tmp_path / "hist"
        main(["bench", "record", str(make_artifact({"a": 1.0})), "--history-dir", str(hist)])
        capsys.readouterr()
        assert main(["bench", "check", "--history-dir", str(hist)]) == 0
        assert "only one recorded run" in capsys.readouterr().out

    def test_acceptance_synthetic_slowdown_fails_check(
        self, make_artifact, tmp_path, capsys
    ):
        """ISSUE acceptance: record twice, then a >tolerance slowdown fails."""
        hist = tmp_path / "hist"
        main(["bench", "record", str(make_artifact({"a": 1.0, "b": 0.5})), "--history-dir", str(hist)])
        main(["bench", "record", str(make_artifact({"a": 1.0, "b": 0.5})), "--history-dir", str(hist)])
        capsys.readouterr()
        assert main(["bench", "check", "--history-dir", str(hist)]) == 0

        slow = make_artifact({"a": 1.6, "b": 0.5}, name="BENCH_slow.json")
        main(["bench", "record", str(slow), "--history-dir", str(hist)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "check", "--tolerance", "0.25", "--history-dir", str(hist)])
        message = str(excinfo.value)
        assert "bench check FAILED" in message
        assert "a" in message and "regressed" in message

        # ... and the markdown report shows the per-benchmark trajectory.
        assert main(["bench", "report", "--markdown", "--history-dir", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "| a | 3 |" in out and "| b | 3 |" in out
        assert "+60.0%" in out

    def test_check_fails_on_vanished_benchmark(self, make_artifact, tmp_path):
        hist = tmp_path / "hist"
        main(["bench", "record", str(make_artifact({"a": 1.0, "b": 1.0})), "--history-dir", str(hist)])
        main(["bench", "record", str(make_artifact({"a": 1.0, "b": 1.0})), "--history-dir", str(hist)])
        main(["bench", "record", str(make_artifact({"a": 1.0})), "--history-dir", str(hist)])
        with pytest.raises(SystemExit, match="missing from the current run"):
            main(["bench", "check", "--history-dir", str(hist)])


class TestCompareVerb:
    def test_compare_shares_the_script_flow(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"a": 1.0}, sha="abc")
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "compare", str(artifact), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert json.loads(baseline.read_text())["meta"]["git_sha"] == "abc"
        capsys.readouterr()
        assert main(["bench", "compare", str(artifact), "--baseline", str(baseline)]) == 0
        assert "baseline provenance: sha=abc" in capsys.readouterr().out

        slow = make_artifact({"a": 9.0}, name="BENCH_slow.json")
        assert main(["bench", "compare", str(slow), "--baseline", str(baseline)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "compare", str(slow), "--baseline", str(baseline), "--strict"])
        assert excinfo.value.code == 1


class TestCommittedBaseline:
    def test_committed_smoke_baseline_loads_with_meta(self):
        from pathlib import Path

        from repro.bench import read_baseline

        path = Path(__file__).resolve().parents[2] / "benchmarks/baselines/smoke.json"
        means, meta = read_baseline(path)
        assert len(means) >= 10
        assert meta.source  # legacy import block present
