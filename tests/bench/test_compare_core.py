"""The shared comparison core: buckets, strict rules, baseline provenance."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import (
    Comparison,
    compare,
    format_comparison,
    read_artifact,
    read_baseline,
    run_compare,
    write_baseline,
)

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_compare.py"


def _load_script():
    spec = importlib.util.spec_from_file_location("bench_compare_script", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCompareBuckets:
    def test_buckets(self):
        result = compare(
            current={"slow": 2.0, "fast": 0.4, "same": 1.05, "fresh": 1.0},
            baseline={"slow": 1.0, "fast": 1.0, "same": 1.0, "vanished": 1.0},
            tolerance=0.5,
        )
        assert isinstance(result, Comparison)
        assert [row[0] for row in result.regressions] == ["slow"]
        assert [row[0] for row in result.improvements] == ["fast"]
        assert [row[0] for row in result.steady] == ["same"]
        assert result.new == ["fresh"]
        assert result.gone == ["vanished"]
        assert result.overlap == 3

    def test_ratio_recorded(self):
        result = compare({"a": 3.0}, {"a": 1.0}, tolerance=0.5)
        name, base, mean, ratio = result.regressions[0]
        assert (name, base, mean) == ("a", 1.0, 3.0)
        assert ratio == pytest.approx(3.0)

    def test_zero_baseline_skipped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="zero_mean_bench"):
            result = compare(
                {"zero_mean_bench": 0.5, "ok": 1.0},
                {"zero_mean_bench": 0.0, "ok": 1.0},
                tolerance=0.5,
            )
        assert result.skipped_zero_baseline == ["zero_mean_bench"]
        assert not result.regressions  # no fake astronomic regression
        assert result.overlap == 2

    def test_near_zero_baseline_also_skipped(self):
        with pytest.warns(RuntimeWarning):
            result = compare({"a": 0.5}, {"a": 1e-12}, tolerance=0.5)
        assert result.skipped_zero_baseline == ["a"]


class TestViolations:
    def test_clean_run_has_no_violations(self):
        result = compare({"a": 1.0}, {"a": 1.0}, tolerance=0.5)
        assert result.violations() == []

    def test_regression_is_a_violation(self):
        result = compare({"a": 2.0}, {"a": 1.0}, tolerance=0.5)
        assert any("regressed" in problem for problem in result.violations())

    def test_gone_is_a_violation(self):
        result = compare({"a": 1.0}, {"a": 1.0, "b": 1.0}, tolerance=0.5)
        assert any("missing from the current run" in p for p in result.violations())
        assert result.violations(ignore_gone=True) == []

    def test_empty_overlap_is_a_violation(self):
        result = compare({"renamed_a": 1.0}, {"a": 1.0}, tolerance=0.5)
        assert result.empty_overlap
        assert any("vacuous" in problem for problem in result.violations())


class TestBaselineProvenance:
    def test_write_and_read_round_trip(self, make_artifact, tmp_path):
        artifact = read_artifact(
            make_artifact({"a": 0.5}, rounds={"a": 9}, sha="cafebabe", host="box")
        )
        baseline_path = tmp_path / "baselines" / "smoke.json"
        meta = write_baseline(baseline_path, artifact)
        assert meta.git_sha == "cafebabe"
        means, read_meta = read_baseline(baseline_path)
        assert means == {"a": 0.5}
        assert read_meta.git_sha == "cafebabe"
        assert read_meta.host == "box"
        assert read_meta.timestamp == "2026-08-08T00:00:00"
        payload = json.loads(baseline_path.read_text())
        assert payload["meta"]["total_rounds"] == 9
        assert payload["benchmarks"][0]["stats"]["rounds"] == 9

    def test_explicit_sha_wins(self, make_artifact, tmp_path):
        artifact = read_artifact(make_artifact({"a": 0.5}, sha="artifact-sha"))
        meta = write_baseline(tmp_path / "b.json", artifact, git_sha="explicit-sha")
        assert meta.git_sha == "explicit-sha"

    def test_legacy_baseline_without_meta_still_loads(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"benchmarks": [{"name": "a", "stats": {"mean": 1.0}}]}))
        means, meta = read_baseline(path)
        assert means == {"a": 1.0}
        assert meta.git_sha is None and meta.timestamp is None

    def test_header_prints_provenance(self):
        artifact_means = {"a": 1.0}
        result = compare(artifact_means, {"a": 1.0}, tolerance=0.5)
        from repro.bench import RunMeta

        text = format_comparison(
            result,
            current_label="BENCH.json",
            baseline_label="smoke.json",
            baseline_meta=RunMeta(git_sha="abc123def456789", timestamp="2026-01-01", host="ci"),
        )
        assert "baseline provenance: sha=abc123def456 date=2026-01-01 host=ci" in text

    def test_header_marks_unknown_provenance(self):
        result = compare({"a": 1.0}, {"a": 1.0}, tolerance=0.5)
        from repro.bench import RunMeta

        text = format_comparison(
            result,
            current_label="BENCH.json",
            baseline_label="smoke.json",
            baseline_meta=RunMeta(),
        )
        assert "baseline provenance: unknown" in text


class TestRunCompareExitCodes:
    """The exit-code contract shared by the script and `repro bench compare`."""

    def _baseline(self, make_artifact, tmp_path, means, name="baseline.json"):
        path = tmp_path / name
        write_baseline(path, read_artifact(make_artifact(means, name="BENCH_base.json")))
        return path

    def test_clean_compare_exits_zero(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"a": 1.0})
        baseline = self._baseline(make_artifact, tmp_path, {"a": 1.0})
        assert run_compare(artifact, baseline, strict=True) == 0
        assert "no regressions beyond tolerance" in capsys.readouterr().out

    def test_regression_strict_exits_one(self, make_artifact, tmp_path):
        artifact = make_artifact({"a": 2.0})
        baseline = self._baseline(make_artifact, tmp_path, {"a": 1.0})
        assert run_compare(artifact, baseline, tolerance=0.5, strict=True) == 1
        assert run_compare(artifact, baseline, tolerance=0.5, strict=False) == 0

    def test_gone_strict_exits_one(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"a": 1.0})
        baseline = self._baseline(make_artifact, tmp_path, {"a": 1.0, "b": 1.0})
        assert run_compare(artifact, baseline, strict=True) == 1
        out = capsys.readouterr().out
        assert "missing benchmarks (in baseline only): b" in out

    def test_empty_overlap_strict_exits_one(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"renamed_a": 1.0, "renamed_b": 1.0})
        baseline = self._baseline(make_artifact, tmp_path, {"a": 1.0, "b": 1.0})
        assert run_compare(artifact, baseline, strict=True) == 1
        assert "vacuous" in capsys.readouterr().out

    def test_missing_baseline_exits_zero(self, make_artifact, tmp_path):
        artifact = make_artifact({"a": 1.0})
        assert run_compare(artifact, tmp_path / "nope.json", strict=True) == 0

    def test_malformed_artifact_exits_two(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"benchmarks": [{"name": "x"}]}')
        assert run_compare(bad, tmp_path / "baseline.json", strict=True) == 2

    def test_write_baseline_records_provenance(self, make_artifact, tmp_path, capsys):
        artifact = make_artifact({"a": 1.0}, sha="feedface")
        baseline = tmp_path / "new-baseline.json"
        assert run_compare(artifact, baseline, write_baseline_instead=True) == 0
        assert "sha=feedface" in capsys.readouterr().out
        assert json.loads(baseline.read_text())["meta"]["git_sha"] == "feedface"


class TestScriptWrapper:
    """scripts/bench_compare.py is a thin shell over the same core."""

    def test_strict_regression_exit(self, make_artifact, tmp_path):
        script = _load_script()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, read_artifact(make_artifact({"a": 1.0})))
        artifact = make_artifact({"a": 5.0}, name="BENCH_slow.json")
        assert script.main([str(artifact), "--baseline", str(baseline)]) == 0
        assert (
            script.main([str(artifact), "--baseline", str(baseline), "--strict"]) == 1
        )

    def test_strict_gone_and_empty_overlap_exit(self, make_artifact, tmp_path):
        script = _load_script()
        baseline = tmp_path / "baseline.json"
        write_baseline(
            baseline, read_artifact(make_artifact({"a": 1.0, "b": 1.0}))
        )
        gone = make_artifact({"a": 1.0}, name="BENCH_gone.json")
        assert script.main([str(gone), "--baseline", str(baseline), "--strict"]) == 1
        renamed = make_artifact({"z": 1.0}, name="BENCH_renamed.json")
        assert script.main([str(renamed), "--baseline", str(baseline), "--strict"]) == 1

    def test_write_baseline_then_self_compare_clean(self, make_artifact, tmp_path):
        script = _load_script()
        artifact = make_artifact({"a": 1.0, "b": 0.25}, rounds={"a": 3, "b": 5})
        baseline = tmp_path / "self.json"
        assert script.main(
            [str(artifact), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        payload = json.loads(baseline.read_text())
        assert payload["meta"]["total_rounds"] == 8
        assert script.main(
            [str(artifact), "--baseline", str(baseline), "--strict", "--tolerance", "0.01"]
        ) == 0

    def test_back_compat_reexports(self):
        script = _load_script()
        assert script.load_means is not None and script.compare is not None
