"""The append-only history store and its rolling regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchHistory, read_artifact
from repro.bench.history import RUNS_FILE, SERIES_SUFFIX, series_filename


class TestRecord:
    def test_record_appends_runs_and_series(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        artifact = make_artifact({"a": 1.0, "b": 2.0}, sha="sha-one")
        first = history.record(artifact)
        second = history.record(artifact)
        assert (first["run"], second["run"]) == (1, 2)
        runs = history.runs()
        assert [run["run"] for run in runs] == [1, 2]
        assert runs[0]["git_sha"] == "sha-one"
        assert runs[0]["benchmarks"] == 2
        assert history.names() == ["a", "b"]
        series = history.series("a")
        assert [entry.run for entry in series] == [1, 2]
        assert all(entry.mean == 1.0 for entry in series)

    def test_explicit_metadata_wins_over_artifact(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        artifact = make_artifact({"a": 1.0}, sha="artifact-sha", host="artifact-host")
        manifest = history.record(
            artifact, git_sha="cli-sha", timestamp="2026-02-02", host="cli-host"
        )
        assert manifest["git_sha"] == "cli-sha"
        assert manifest["timestamp"] == "2026-02-02"
        assert manifest["host"] == "cli-host"
        entry = history.series("a")[0]
        assert entry.git_sha == "cli-sha" and entry.host == "cli-host"

    def test_rounds_recorded(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        history.record(make_artifact({"a": 1.0}, rounds={"a": 4}))
        assert history.series("a")[0].rounds == 4

    def test_series_files_are_append_only_jsonl(self, make_artifact, tmp_path):
        root = tmp_path / "hist"
        history = BenchHistory(root)
        artifact = read_artifact(make_artifact({"a": 1.0}))
        history.record(artifact)
        history.record(artifact)
        path = root / series_filename("a")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] == "a" for line in lines)

    def test_slug_collisions_get_distinct_files(self):
        # Two names differing only in slug-hostile characters share a slug
        # but never a file (content digest in the filename).
        name_a, name_b = "test[x/y]", "test[x:y]"
        assert series_filename(name_a) != series_filename(name_b)
        assert series_filename(name_a).endswith(SERIES_SUFFIX)

    def test_torn_tail_line_is_skipped(self, make_artifact, tmp_path):
        root = tmp_path / "hist"
        history = BenchHistory(root)
        history.record(make_artifact({"a": 1.0}))
        path = root / series_filename("a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run": 2, "name": "a", "mea')  # killed mid-write
        assert [entry.run for entry in history.series("a")] == [1]
        # ... and the next record still lands cleanly after the torn line.
        history.record(make_artifact({"a": 1.5}))
        assert [entry.run for entry in history.series("a")] == [1, 2]


class TestRollingBaseline:
    def test_median_over_window(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        for mean in (1.0, 3.0, 2.0):
            history.record(make_artifact({"a": mean}))
        baseline = history.rolling_baseline(window=5)
        assert baseline["a"] == pytest.approx(2.0)

    def test_before_run_excludes_the_newest(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        for mean in (1.0, 1.0, 100.0):
            history.record(make_artifact({"a": mean}))
        baseline = history.rolling_baseline(window=5, before_run=3)
        assert baseline["a"] == pytest.approx(1.0)

    def test_window_truncates_old_entries(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        for mean in (100.0, 100.0, 1.0, 1.0, 1.0):
            history.record(make_artifact({"a": mean}))
        assert history.rolling_baseline(window=3)["a"] == pytest.approx(1.0)


class TestCheck:
    def test_empty_history_passes_with_note(self, tmp_path):
        check = BenchHistory(tmp_path / "none").check()
        assert not check.failed
        assert any("no recorded runs" in note for note in check.notes)

    def test_single_run_passes_with_note(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        history.record(make_artifact({"a": 1.0}))
        check = history.check()
        assert not check.failed
        assert any("only one recorded run" in note for note in check.notes)

    def test_steady_series_passes(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        for mean in (1.0, 1.02, 0.98):
            history.record(make_artifact({"a": mean}))
        check = history.check(tolerance=0.25)
        assert not check.failed
        assert check.comparison.steady

    def test_synthetic_regression_fails(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        history.record(make_artifact({"a": 1.0}))
        history.record(make_artifact({"a": 1.0}))
        history.record(make_artifact({"a": 2.0}))  # 2x the rolling median
        check = history.check(tolerance=0.25)
        assert check.failed
        assert [row[0] for row in check.comparison.regressions] == ["a"]

    def test_vanished_benchmark_fails(self, make_artifact, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        history.record(make_artifact({"a": 1.0, "b": 1.0}))
        history.record(make_artifact({"a": 1.0, "b": 1.0}))
        history.record(make_artifact({"a": 1.0}))  # b silently left coverage
        check = history.check(tolerance=0.25)
        assert check.failed
        assert check.comparison.gone == ["b"]

    def test_first_seen_benchmark_is_insufficient_not_failed(
        self, make_artifact, tmp_path
    ):
        history = BenchHistory(tmp_path / "hist")
        history.record(make_artifact({"a": 1.0}))
        history.record(make_artifact({"a": 1.0, "brand_new": 9.0}))
        check = history.check(tolerance=0.25)
        assert not check.failed
        assert check.insufficient == ["brand_new"]

    def test_manifest_survives_torn_runs_line(self, make_artifact, tmp_path):
        root = tmp_path / "hist"
        history = BenchHistory(root)
        history.record(make_artifact({"a": 1.0}))
        with open(root / RUNS_FILE, "a", encoding="utf-8") as handle:
            handle.write('{"run": 2, "git_')
        history.record(make_artifact({"a": 1.0}))
        assert [run["run"] for run in history.runs()] == [1, 2]
