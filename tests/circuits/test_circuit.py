"""Tests for QuantumCircuit construction and metrics."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.gates import SwapGate
from repro.linalg.random import random_unitary


class TestConstruction:
    def test_append_and_len(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        assert len(circuit) == 3
        assert circuit.num_qubits == 3

    def test_out_of_range_qubit(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(5)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_builder_methods_cover_standard_gates(self):
        circuit = QuantumCircuit(3)
        circuit.x(0).y(1).z(2).s(0).t(1).tdg(2)
        circuit.rx(0.1, 0).ry(0.2, 1).rz(0.3, 2).u3(0.1, 0.2, 0.3, 0)
        circuit.cz(0, 1).cp(0.5, 1, 2).rzz(0.7, 0, 2).rxx(0.2, 0, 1)
        circuit.swap(0, 1).iswap(1, 2).siswap(0, 2).ccx(0, 1, 2)
        assert circuit.size() == 18

    def test_unitary_append(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, 1), (0, 1), label="block")
        assert circuit.instructions[0].name == "unitary"

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        clone = circuit.copy()
        clone.cx(0, 1)
        assert len(circuit) == 1 and len(clone) == 2

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubits=[2, 3])
        assert outer.instructions[0].qubits == (2, 3)

    def test_compose_too_large(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_inverse_reverses_order(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        inverse = circuit.inverse()
        assert inverse.instructions[0].name == "cx"
        assert inverse.instructions[1].name in ("h", "unitary")

    def test_extend_validates(self):
        circuit = QuantumCircuit(2)
        other = QuantumCircuit(2)
        other.cx(0, 1)
        circuit.extend(other.instructions)
        assert len(circuit) == 1


class TestCounting:
    def test_count_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).swap(0, 2)
        counts = circuit.count_ops()
        assert counts == {"h": 1, "cx": 2, "swap": 1}

    def test_two_qubit_count_excludes_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).barrier()
        assert circuit.two_qubit_gate_count() == 1
        assert circuit.size() == 1

    def test_swap_count_induced_only(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.swap(0, 1, induced=True)
        assert circuit.swap_count() == 2
        assert circuit.swap_count(induced_only=True) == 1

    def test_num_nonlocal_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2)
        assert circuit.num_nonlocal_gates() == 2


class TestDepthAndCriticalPath:
    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)  # parallel
        circuit.cx(1, 2)  # depends on both
        assert circuit.depth() == 2

    def test_depth_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(0)
        assert circuit.depth() == 2

    def test_critical_path_two_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(1, 2)
        assert circuit.critical_path_two_qubit() == 2

    def test_critical_path_swaps_only_counts_swaps(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1, induced=True)
        circuit.cx(1, 2)
        circuit.swap(1, 2, induced=True)
        assert circuit.critical_path_swaps(induced_only=True) == 2
        assert circuit.critical_path_two_qubit() == 3

    def test_critical_path_with_parallel_swaps(self):
        circuit = QuantumCircuit(4)
        circuit.swap(0, 1, induced=True)
        circuit.swap(2, 3, induced=True)
        assert circuit.critical_path_swaps() == 1

    def test_weighted_duration_uses_gate_durations(self):
        circuit = QuantumCircuit(2)
        circuit.siswap(0, 1)
        circuit.siswap(0, 1)
        # Two sqrt(iSWAP) pulses at half an iSWAP each.
        assert circuit.weighted_duration() == pytest.approx(1.0)

    def test_cx_weighted_duration(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert circuit.weighted_duration() == pytest.approx(1.0)

    def test_depth_matches_dag_longest_path(self):
        from repro.circuits import DAGCircuit

        rng = np.random.default_rng(3)
        circuit = QuantumCircuit(5)
        for _ in range(30):
            a, b = rng.choice(5, size=2, replace=False)
            circuit.cx(int(a), int(b))
        assert circuit.depth() == DAGCircuit(circuit).longest_path_length()


class TestInteractions:
    def test_two_qubit_interactions_histogram(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 0).cx(1, 2)
        interactions = circuit.two_qubit_interactions()
        assert interactions[(0, 1)] == 2
        assert interactions[(1, 2)] == 1

    def test_to_unitary_swap(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        assert np.allclose(circuit.to_unitary(), SwapGate().matrix())
