"""Tests for the circuit dependency DAG."""

from repro.circuits import DAGCircuit, QuantumCircuit


class TestDAGStructure:
    def _chain(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.h(2)
        return circuit

    def test_front_layer(self):
        dag = DAGCircuit(self._chain())
        assert dag.front_layer() == [0]

    def test_parallel_front_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = DAGCircuit(circuit)
        assert sorted(dag.front_layer()) == [0, 1]

    def test_successors_and_predecessors(self):
        dag = DAGCircuit(self._chain())
        assert dag.successors(0) == (1,)
        assert dag.predecessors(2) == (1,)
        assert dag.predecessors(0) == ()

    def test_len_matches_instructions(self):
        circuit = self._chain()
        assert len(DAGCircuit(circuit)) == len(circuit)

    def test_layers_partition_all_nodes(self):
        dag = DAGCircuit(self._chain())
        layers = dag.layers()
        flattened = sorted(index for layer in layers for index in layer)
        assert flattened == list(range(len(dag)))

    def test_layers_respect_dependencies(self):
        dag = DAGCircuit(self._chain())
        level = {}
        for depth, layer in enumerate(dag.layers()):
            for index in layer:
                level[index] = depth
        for node in dag.nodes:
            for predecessor in node.predecessors:
                assert level[predecessor] < level[node.index]

    def test_longest_path_with_weights(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        dag = DAGCircuit(circuit)
        only_2q = dag.longest_path_length(lambda inst: 1.0 if inst.is_two_qubit else 0.0)
        assert only_2q == 1.0

    def test_topological_order_is_instruction_order(self):
        dag = DAGCircuit(self._chain())
        assert dag.topological_order() == [0, 1, 2, 3]
