"""CSR-array DAG equivalence against a naive set-based reference.

The array-backed :class:`DAGCircuit` must expose exactly the dependency
structure the old per-node-set implementation did; the reference is
rebuilt here from first principles (last-writer-per-wire) and compared on
randomized circuits.
"""

import numpy as np

from repro.circuits import DAGCircuit, QuantumCircuit
from repro.gates import RZZGate


def _random_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        kind = rng.integers(4)
        if kind == 0:
            circuit.h(int(rng.integers(num_qubits)))
        elif kind == 1:
            circuit.rx(float(rng.uniform(0, np.pi)), int(rng.integers(num_qubits)))
        elif kind == 2:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circuit.append(RZZGate(float(rng.uniform(0, np.pi))), (int(a), int(b)))
    return circuit


def _reference_edges(circuit):
    """(predecessors, successors) per node via per-wire last-writer sets."""
    predecessors = [set() for _ in circuit]
    successors = [set() for _ in circuit]
    last_on_wire = {}
    for index, instruction in enumerate(circuit):
        for qubit in instruction.qubits:
            if qubit in last_on_wire:
                previous = last_on_wire[qubit]
                predecessors[index].add(previous)
                successors[previous].add(index)
            last_on_wire[qubit] = index
    return predecessors, successors


class TestCSREquivalence:
    def test_randomized_adjacency_matches_reference(self):
        for seed in range(12):
            circuit = _random_circuit(num_qubits=6, num_gates=40, seed=seed)
            dag = DAGCircuit(circuit)
            predecessors, successors = _reference_edges(circuit)
            for index in range(len(circuit)):
                assert dag.predecessors(index) == tuple(sorted(predecessors[index]))
                assert dag.successors(index) == tuple(sorted(successors[index]))
            expected_front = [
                index for index in range(len(circuit)) if not predecessors[index]
            ]
            assert dag.front_layer() == expected_front

    def test_predecessor_counts_match_and_are_private(self):
        circuit = _random_circuit(5, 25, seed=3)
        dag = DAGCircuit(circuit)
        predecessors, _ = _reference_edges(circuit)
        counts = dag.predecessor_counts()
        assert counts.tolist() == [len(p) for p in predecessors]
        counts[:] = -1  # a copy: mutating it must not corrupt the DAG
        assert dag.predecessor_counts().tolist() == [len(p) for p in predecessors]

    def test_qubit_pair_arrays(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(1, 2)
        circuit.barrier()
        circuit.cx(3, 0)
        dag = DAGCircuit(circuit)
        assert dag.two_qubit_mask.tolist() == [False, True, False, True]
        assert dag.qubit_pairs[1].tolist() == [1, 2]
        assert dag.qubit_pairs[3].tolist() == [3, 0]
        assert dag.qubit_pairs[0].tolist() == [-1, -1]

    def test_two_qubit_interactions_match_circuit(self):
        for seed in (0, 4, 9):
            circuit = _random_circuit(6, 30, seed=seed)
            assert DAGCircuit(circuit).two_qubit_interactions() == (
                circuit.two_qubit_interactions()
            )

    def test_layers_and_longest_path_against_reference(self):
        for seed in (2, 8):
            circuit = _random_circuit(5, 30, seed=seed)
            dag = DAGCircuit(circuit)
            predecessors, _ = _reference_edges(circuit)
            level = {}
            for index in range(len(circuit)):
                level[index] = max(
                    (level[p] + 1 for p in predecessors[index]), default=0
                )
            expected_layers = {}
            for index, depth in level.items():
                expected_layers.setdefault(depth, []).append(index)
            assert dag.layers() == [
                expected_layers[d] for d in sorted(expected_layers)
            ]
            assert dag.longest_path_length() == max(level.values()) + 1

    def test_empty_circuit(self):
        dag = DAGCircuit(QuantumCircuit(3))
        assert len(dag) == 0
        assert dag.front_layer() == []
        assert dag.layers() == []
        assert dag.longest_path_length() == 0.0
