"""Tests for the Gate / UnitaryGate abstractions."""

import numpy as np
import pytest

from repro.circuits.gate import Barrier, Gate, UnitaryGate
from repro.gates import CXGate, HGate, RZGate
from repro.linalg.random import random_unitary


class TestGateBase:
    def test_properties(self):
        gate = RZGate(0.4)
        assert gate.name == "rz"
        assert gate.num_qubits == 1
        assert gate.params == (0.4,)
        assert not gate.is_two_qubit

    def test_label_defaults_to_name(self):
        assert HGate().label == "h"

    def test_base_gate_matrix_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Gate("custom", 1).matrix()

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            Gate("bad", 0)

    def test_equality_includes_params(self):
        assert RZGate(0.5) == RZGate(0.5)
        assert RZGate(0.5) != RZGate(0.6)
        assert hash(RZGate(0.5)) == hash(RZGate(0.5))

    def test_equality_across_types(self):
        assert HGate() != CXGate()
        assert HGate() != "h"

    def test_default_inverse_uses_matrix(self):
        gate = RZGate(0.3)
        inverse = gate.inverse()
        assert np.allclose(inverse.matrix() @ gate.matrix(), np.eye(2), atol=1e-9)

    def test_duration_defaults(self):
        assert HGate().duration() == 0.0
        assert CXGate().duration() == 1.0


class TestUnitaryGate:
    def test_round_trip(self):
        matrix = random_unitary(4, 5)
        gate = UnitaryGate(matrix, label="block")
        assert np.allclose(gate.matrix(), matrix)
        assert gate.num_qubits == 2
        assert gate.label == "block"

    def test_single_qubit(self):
        gate = UnitaryGate(random_unitary(2, 3))
        assert gate.num_qubits == 1

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.ones((4, 4)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.eye(3))

    def test_inverse(self):
        matrix = random_unitary(4, 7)
        gate = UnitaryGate(matrix)
        assert np.allclose(gate.inverse().matrix() @ matrix, np.eye(4), atol=1e-9)

    def test_equality_by_matrix(self):
        matrix = random_unitary(4, 9)
        assert UnitaryGate(matrix) == UnitaryGate(matrix.copy())
        assert UnitaryGate(matrix) != UnitaryGate(random_unitary(4, 10))


class TestBarrier:
    def test_is_identity(self):
        assert np.allclose(Barrier(2).matrix(), np.eye(4))

    def test_zero_duration(self):
        assert Barrier(3).duration() == 0.0
