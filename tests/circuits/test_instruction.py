"""Tests for Instruction."""

import pytest

from repro.circuits.instruction import Instruction
from repro.gates import CXGate, HGate, SwapGate


class TestInstruction:
    def test_basic_properties(self):
        instruction = Instruction(CXGate(), (0, 1))
        assert instruction.name == "cx"
        assert instruction.num_qubits == 2
        assert instruction.is_two_qubit
        assert not instruction.induced

    def test_single_qubit_not_two_qubit(self):
        assert not Instruction(HGate(), (3,)).is_two_qubit

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Instruction(CXGate(), (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(CXGate(), (1, 1))

    def test_induced_flag_not_part_of_equality(self):
        routed = Instruction(SwapGate(), (0, 1), induced=True)
        source = Instruction(SwapGate(), (0, 1), induced=False)
        assert routed == source

    def test_remap_with_dict(self):
        instruction = Instruction(CXGate(), (0, 1))
        remapped = instruction.remap({0: 5, 1: 7})
        assert remapped.qubits == (5, 7)

    def test_remap_with_callable(self):
        instruction = Instruction(CXGate(), (0, 1), induced=True)
        remapped = instruction.remap(lambda q: q + 10)
        assert remapped.qubits == (10, 11)
        assert remapped.induced
