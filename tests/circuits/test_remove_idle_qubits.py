"""Tests for QuantumCircuit.remove_idle_qubits."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.linalg.fidelity import hilbert_schmidt_fidelity
from repro.topology import get_topology
from repro.transpiler import transpile
from repro.workloads import build_workload


class TestRemoveIdleQubits:
    def test_compacts_to_used_qubits(self):
        circuit = QuantumCircuit(10)
        circuit.h(2)
        circuit.cx(2, 7)
        compact = circuit.remove_idle_qubits()
        assert compact.num_qubits == 2
        assert compact.count_ops() == {"h": 1, "cx": 1}

    def test_mapping_recorded_in_metadata(self):
        circuit = QuantumCircuit(6)
        circuit.cx(1, 4)
        compact = circuit.remove_idle_qubits()
        assert compact.metadata["idle_qubit_mapping"] == {1: 0, 4: 1}

    def test_relative_order_preserved(self):
        circuit = QuantumCircuit(5)
        circuit.cx(3, 1)
        compact = circuit.remove_idle_qubits()
        (instruction,) = compact.instructions
        assert instruction.qubits == (1, 0)

    def test_empty_circuit_keeps_one_qubit(self):
        compact = QuantumCircuit(4).remove_idle_qubits()
        assert compact.num_qubits == 1
        assert len(compact) == 0

    def test_unitary_preserved_on_used_subspace(self):
        circuit = QuantumCircuit(6)
        circuit.h(1)
        circuit.cx(1, 3)
        circuit.rz(0.4, 3)
        compact = circuit.remove_idle_qubits()
        reference = QuantumCircuit(2)
        reference.h(0)
        reference.cx(0, 1)
        reference.rz(0.4, 1)
        fidelity = hilbert_schmidt_fidelity(compact.to_unitary(), reference.to_unitary())
        assert fidelity == pytest.approx(1.0)

    def test_transpiled_circuit_becomes_simulable(self):
        device = get_topology("Corral1,1", scale="small")
        circuit = build_workload("GHZ", 6)
        result = transpile(circuit, device, basis_name="siswap")
        compact = result.circuit.remove_idle_qubits()
        assert compact.num_qubits <= device.num_qubits
        assert compact.two_qubit_gate_count() == result.circuit.two_qubit_gate_count()

    def test_all_metrics_preserved(self):
        circuit = QuantumCircuit(12)
        circuit.cx(0, 11)
        circuit.swap(0, 11, induced=True)
        compact = circuit.remove_idle_qubits()
        assert compact.swap_count(induced_only=True) == 1
        assert compact.critical_path_two_qubit() == circuit.critical_path_two_qubit()
