"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.topology import (
    corral_topology,
    hypercube,
    square_lattice,
    tree_topology,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """Two-qubit Bell-state preparation."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz4_circuit() -> QuantumCircuit:
    """Four-qubit GHZ preparation."""
    circuit = QuantumCircuit(4, name="ghz4")
    circuit.h(0)
    for qubit in range(3):
        circuit.cx(qubit, qubit + 1)
    return circuit


@pytest.fixture
def grid_4x4():
    """4x4 square lattice (the paper's 16-qubit baseline)."""
    return square_lattice(4, 4)


@pytest.fixture
def hypercube_4d():
    """4-dimensional hypercube (16 qubits)."""
    return hypercube(4)


@pytest.fixture
def tree_20q():
    """The 20-qubit SNAIL Tree."""
    return tree_topology(levels=2, arity=4)


@pytest.fixture
def corral_16q():
    """The 16-qubit Corral(1,1)."""
    return corral_topology(8, (1, 1))
