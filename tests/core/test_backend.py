"""Tests for the Backend abstraction."""

import pytest

from repro.core import Backend, make_backend
from repro.decomposition import get_basis
from repro.topology import corral_topology, square_lattice
from repro.workloads import ghz_circuit, quantum_volume_circuit


class TestBackend:
    def test_default_name(self):
        backend = Backend(square_lattice(4, 4), get_basis("cx"))
        assert "cx" in backend.name
        assert backend.num_qubits == 16

    def test_explicit_name(self):
        backend = make_backend(corral_topology(8, (1, 1)), "siswap", name="Corral")
        assert backend.name == "Corral"
        assert backend.basis.name == "siswap"

    def test_properties_row(self):
        backend = make_backend(square_lattice(4, 4), "cx")
        props = backend.properties()
        assert props.num_qubits == 16
        assert props.average_connectivity == pytest.approx(3.0)

    def test_transpile_returns_metrics(self):
        backend = make_backend(square_lattice(4, 4), "siswap")
        result = backend.transpile(quantum_volume_circuit(6, seed=1), seed=2)
        assert result.metrics.basis == "siswap"
        assert result.metrics.topology == backend.coupling_map.name
        assert result.metrics.total_2q > 0

    def test_transpile_respects_coupling(self):
        backend = make_backend(corral_topology(8, (1, 1)), "siswap")
        result = backend.transpile(ghz_circuit(10))
        for instruction in result.circuit:
            if instruction.is_two_qubit:
                assert backend.coupling_map.has_edge(*instruction.qubits)

    def test_transpile_options_forwarded(self):
        backend = make_backend(square_lattice(4, 4), "cx")
        result = backend.transpile(ghz_circuit(5), routing_method="stochastic", layout_method="trivial")
        assert result.metrics.routing_method == "stochastic"
        assert result.metrics.layout_method == "trivial"
