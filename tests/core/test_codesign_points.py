"""Tests for the co-design points (paper Figs. 13/14 legends)."""


from repro.core import CodesignPoint, design_backends, design_points
from repro.core.codesign import LARGE_DESIGN_POINTS, SMALL_DESIGN_POINTS


class TestDesignPoints:
    def test_small_legend_matches_fig13(self):
        labels = {point.label for point in SMALL_DESIGN_POINTS}
        assert "Heavy-Hex-CX" in labels
        assert "Corral1,1-siswap" in labels
        assert "Hypercube-siswap" in labels

    def test_large_legend_matches_fig14(self):
        labels = {point.label for point in LARGE_DESIGN_POINTS}
        assert "Corral1,1-siswap" not in labels  # corral is not scaled to 84
        assert "Tree-RR-siswap" in labels

    def test_snail_points_use_siswap(self):
        for point in SMALL_DESIGN_POINTS + LARGE_DESIGN_POINTS:
            if point.topology in ("Tree", "Tree-RR", "Hypercube", "Corral1,1"):
                assert point.basis == "siswap"

    def test_ibm_and_google_points(self):
        by_label = {p.label: p for p in SMALL_DESIGN_POINTS}
        assert by_label["Heavy-Hex-CX"].basis == "cx"
        assert by_label["Square-Lattice-SYC"].basis == "syc"

    def test_backend_materialisation_small(self):
        backend = CodesignPoint("Tree-siswap", "Tree", "siswap").backend("small")
        assert backend.num_qubits == 20
        assert backend.basis.name == "siswap"

    def test_backend_materialisation_large(self):
        backend = CodesignPoint("Tree-siswap", "Tree", "siswap").backend("large")
        assert backend.num_qubits == 84

    def test_design_backends_keys(self):
        backends = design_backends("small")
        assert set(backends) == {point.label for point in design_points("small")}

    def test_design_points_scale_selector(self):
        assert design_points("small") == SMALL_DESIGN_POINTS
        assert design_points("large") == LARGE_DESIGN_POINTS
