"""Tests for the fidelity models (paper Eqs. 12-13)."""

import pytest

from repro.core import FidelityModel, best_total_fidelity, compare_designs, nth_root_pulse_fidelity
from repro.core.fidelity import decomposition_total_fidelity
from repro.transpiler import TranspileMetrics


def _metrics(total_2q, critical_2q, weighted=None, topology="t", basis="cx"):
    return TranspileMetrics(
        circuit_name="c",
        circuit_qubits=4,
        topology=topology,
        basis=basis,
        total_swaps=0,
        critical_swaps=0,
        total_2q=total_2q,
        critical_2q=critical_2q,
        weighted_duration=weighted if weighted is not None else float(critical_2q),
        total_gates=total_2q,
        depth=critical_2q,
    )


class TestEquation12:
    def test_paper_example(self):
        """A 90% iSWAP yields a 95% sqrt(iSWAP) (paper Section 6.3)."""
        assert nth_root_pulse_fidelity(0.90, 2) == pytest.approx(0.95)

    def test_identity_root(self):
        assert nth_root_pulse_fidelity(0.97, 1) == pytest.approx(0.97)

    def test_monotone_in_root(self):
        values = [nth_root_pulse_fidelity(0.99, n) for n in (1, 2, 3, 4, 8)]
        assert values == sorted(values)

    def test_perfect_pulse_stays_perfect(self):
        assert nth_root_pulse_fidelity(1.0, 5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nth_root_pulse_fidelity(1.2, 2)
        with pytest.raises(ValueError):
            nth_root_pulse_fidelity(0.9, 0)


class TestEquation13:
    def test_total_fidelity_product(self):
        assert decomposition_total_fidelity(0.999, 0.99, 3) == pytest.approx(0.999 * 0.99 ** 3)

    def test_best_total_fidelity_prefers_fewer_gates_when_equal(self):
        candidates = [(3, 0.9999), (4, 0.9999)]
        best_k, _ = best_total_fidelity(candidates, pulse_fidelity=0.99)
        assert best_k == 3

    def test_best_total_fidelity_trades_off(self):
        # A poor 2-gate template loses to a near-exact 3-gate template.
        candidates = [(2, 0.9), (3, 0.99999)]
        best_k, value = best_total_fidelity(candidates, pulse_fidelity=0.999)
        assert best_k == 3
        assert value > 0.99

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            best_total_fidelity([], 0.99)

    def test_negative_applications_rejected(self):
        with pytest.raises(ValueError):
            decomposition_total_fidelity(0.99, 0.99, -1)


class TestFidelityModel:
    def test_gate_limited_prefers_fewer_gates(self):
        model = FidelityModel(two_qubit_fidelity=0.99)
        assert model.gate_limited(_metrics(10, 5)) > model.gate_limited(_metrics(20, 5))

    def test_time_limited_prefers_shorter_circuits(self):
        model = FidelityModel(decoherence_per_pulse=0.995)
        assert model.time_limited(_metrics(10, 5, weighted=5.0)) > model.time_limited(
            _metrics(10, 12, weighted=12.0)
        )

    def test_combined_is_product(self):
        model = FidelityModel()
        metrics = _metrics(8, 4)
        assert model.combined(metrics) == pytest.approx(
            model.gate_limited(metrics) * model.time_limited(metrics)
        )

    def test_compare_designs_ranks_best_first(self):
        good = _metrics(10, 4, topology="Corral1,1", basis="siswap")
        bad = _metrics(40, 20, topology="Heavy-Hex", basis="cx")
        ranking = compare_designs([bad, good])
        assert ranking[0][0] == "Corral1,1+siswap"
        assert ranking[0][1] > ranking[1][1]
