"""Tests for the heterogeneous noise model extension."""

import pytest

from repro.circuits import QuantumCircuit
from repro.core.noise import NoiseModel
from repro.topology import square_lattice


class TestConstruction:
    def test_uniform(self):
        model = NoiseModel.uniform(0.99)
        assert model.fidelity(0, 1) == 0.99
        assert model.average_fidelity() == 0.99
        assert model.worst_edge() is None

    def test_random_covers_all_edges(self):
        lattice = square_lattice(3, 3)
        model = NoiseModel.random(lattice, mean_fidelity=0.99, spread=0.002, seed=1)
        assert len(model.edge_fidelity) == lattice.num_edges()
        assert all(0.5 <= f <= 1.0 for f in model.edge_fidelity.values())

    def test_random_is_seeded(self):
        lattice = square_lattice(3, 3)
        a = NoiseModel.random(lattice, seed=5)
        b = NoiseModel.random(lattice, seed=5)
        assert a.edge_fidelity == b.edge_fidelity

    def test_worst_edge(self):
        model = NoiseModel(edge_fidelity={(0, 1): 0.99, (1, 2): 0.97})
        assert model.worst_edge() == (1, 2)

    def test_edge_lookup_is_orientation_free(self):
        model = NoiseModel(edge_fidelity={(0, 1): 0.98})
        assert model.fidelity(1, 0) == 0.98


class TestCircuitEstimate:
    def test_empty_circuit_is_perfect(self):
        model = NoiseModel.uniform(0.99, idle_fidelity_per_pulse=1.0)
        assert model.circuit_success_probability(QuantumCircuit(2)) == pytest.approx(1.0)

    def test_two_qubit_gates_multiply(self):
        model = NoiseModel.uniform(0.9, idle_fidelity_per_pulse=1.0)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        assert model.circuit_success_probability(circuit) == pytest.approx(0.81)

    def test_single_qubit_gates_are_free(self):
        model = NoiseModel.uniform(0.9, idle_fidelity_per_pulse=1.0)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).rz(0.3, 0)
        assert model.circuit_success_probability(circuit) == pytest.approx(1.0)

    def test_idle_decoherence_uses_weighted_duration(self):
        model = NoiseModel.uniform(1.0, idle_fidelity_per_pulse=0.99)
        circuit = QuantumCircuit(2)
        circuit.siswap(0, 1)
        circuit.siswap(0, 1)
        # weighted duration = 1.0 iSWAP unit
        assert model.circuit_success_probability(circuit) == pytest.approx(0.99)

    def test_bad_edge_penalises_circuits_using_it(self):
        model = NoiseModel(
            edge_fidelity={(0, 1): 0.999, (1, 2): 0.9},
            default_fidelity=0.999,
            idle_fidelity_per_pulse=1.0,
        )
        good = QuantumCircuit(3)
        good.cx(0, 1)
        bad = QuantumCircuit(3)
        bad.cx(1, 2)
        assert model.circuit_success_probability(good) > model.circuit_success_probability(bad)

    def test_gate_error_budget(self):
        model = NoiseModel(edge_fidelity={(0, 1): 0.99}, default_fidelity=0.999)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 1).cx(1, 2)
        budget = model.gate_error_budget(circuit)
        assert budget[(0, 1)] == pytest.approx(0.02)
        assert budget[(1, 2)] == pytest.approx(0.001)
