"""Tests for the sweep runner."""

import pytest

from repro.core import SweepResult, make_backend, run_point, run_sweep
from repro.topology import hypercube, square_lattice


@pytest.fixture(scope="module")
def small_sweep():
    backends = [
        make_backend(square_lattice(4, 4), "cx", name="Square-CX"),
        make_backend(hypercube(4), "siswap", name="Cube-SIS"),
    ]
    return run_sweep(["GHZ", "QFT"], [5, 8], backends, seed=3)


class TestRunPoint:
    def test_single_point(self):
        backend = make_backend(square_lattice(4, 4), "cx", name="Square-CX")
        metrics = run_point("GHZ", 6, backend, seed=1)
        assert metrics.extra["workload"] == "GHZ"
        assert metrics.extra["backend"] == "Square-CX"
        assert metrics.circuit_qubits == 6


class TestRunSweep:
    def test_grid_size(self, small_sweep):
        # 2 workloads x 2 sizes x 2 backends
        assert len(small_sweep) == 8

    def test_oversized_circuits_skipped(self):
        backend = make_backend(square_lattice(2, 2), "cx", name="Tiny")
        result = run_sweep(["GHZ"], [3, 10], [backend], seed=0)
        assert len(result) == 1

    def test_filter(self, small_sweep):
        ghz_only = small_sweep.filter(circuit_qubits=8)
        assert len(ghz_only) == 4
        assert all(record.circuit_qubits == 8 for record in ghz_only)

    def test_filter_matches_extra_fields_like_series_does(self, small_sweep):
        """filter() goes through as_dict(), so flattened extra fields match."""
        ghz_records = small_sweep.filter(workload="GHZ")
        assert len(ghz_records) == 4
        assert all(record.extra["workload"] == "GHZ" for record in ghz_records)
        one_backend = small_sweep.filter(workload="GHZ", backend="Cube-SIS")
        assert len(one_backend) == 2

    def test_filter_unknown_field_matches_nothing(self, small_sweep):
        assert len(small_sweep.filter(nonexistent_field=1)) == 0

    def test_average_over_extra_field(self, small_sweep):
        value = small_sweep.average("total_2q", workload="GHZ")
        assert value > 0

    def test_series_grouping(self, small_sweep):
        series = small_sweep.series("topology", "circuit_qubits", "total_2q")
        assert len(series) == 2
        for values in series.values():
            assert [x for x, _ in values] == sorted(x for x, _ in values)

    def test_average(self, small_sweep):
        value = small_sweep.average("total_2q", topology="hypercube-4d")
        assert value > 0

    def test_average_no_match(self, small_sweep):
        with pytest.raises(ValueError):
            small_sweep.average("total_2q", topology="nonexistent")

    def test_as_dicts(self, small_sweep):
        rows = small_sweep.as_dicts()
        assert len(rows) == len(small_sweep)
        assert {"workload", "backend", "total_swaps"} <= set(rows[0])

    def test_progress_callback(self):
        messages = []
        backend = make_backend(square_lattice(4, 4), "cx", name="Square-CX")
        run_sweep(["GHZ"], [4], [backend], progress=messages.append)
        assert messages == ["GHZ-4 on Square-CX"]

    def test_add_and_iterate(self):
        result = SweepResult()
        assert len(result) == 0
        backend = make_backend(square_lattice(4, 4), "cx")
        result.add(run_point("GHZ", 4, backend))
        assert len(list(iter(result))) == 1
