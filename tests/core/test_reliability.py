"""Tests for the wall-clock reliability model and ranking."""

import pytest

from repro.core import make_backend
from repro.core.reliability import (
    ReliabilityModel,
    durations_for_backend,
    format_reliability_report,
    reliability_ranking,
    simulated_reliability_check,
)
from repro.topology import get_topology
from repro.workloads import build_workload


def backend_for(topology: str, basis: str, name=None):
    return make_backend(get_topology(topology, scale="small"), basis, name=name)


class TestReliabilityModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReliabilityModel(two_qubit_fidelity=0.0)
        with pytest.raises(ValueError):
            ReliabilityModel(t1_us=-1.0)
        with pytest.raises(ValueError):
            ReliabilityModel(t1_us=10.0, t2_us=30.0)

    def test_gate_success_counts_two_qubit_gates(self):
        model = ReliabilityModel(two_qubit_fidelity=0.99, one_qubit_fidelity=1.0)
        circuit = build_workload("GHZ", 4)
        assert model.gate_success(circuit) == pytest.approx(0.99 ** 3)

    def test_to_noise_model_rescales_decoherence_to_pulse_units(self):
        model = ReliabilityModel(
            two_qubit_fidelity=0.99, one_qubit_fidelity=1.0, t1_us=50.0, t2_us=40.0
        )
        noise = model.to_noise_model(pulse_duration_ns=100.0)
        # 50 us / 100 ns per pulse = 500 pulse units.
        assert noise.t1 == pytest.approx(500.0)
        assert noise.t2 == pytest.approx(400.0)
        assert noise.two_qubit_error == pytest.approx((1.0 - 0.99) * 5.0 / 4.0)
        assert noise.one_qubit_error == pytest.approx(0.0)
        with pytest.raises(ValueError):
            model.to_noise_model(pulse_duration_ns=0.0)

    def test_simulated_check_tracks_the_closed_form_estimate(self):
        backend = backend_for("Corral1,1", "siswap")
        model = ReliabilityModel(two_qubit_fidelity=0.995)
        circuit = build_workload("GHZ", 5, seed=1)
        row = simulated_reliability_check(model, backend, circuit, seed=1)
        assert 0.0 < row["estimated_success"] <= 1.0
        assert 0.0 < row["simulated_fidelity"] <= 1.0 + 1e-9
        assert row["qubits"] <= 14

    def test_estimate_has_consistent_fields(self):
        backend = backend_for("Corral1,1", "siswap")
        model = ReliabilityModel()
        circuit = build_workload("QuantumVolume", 8, seed=2)
        estimate = model.estimate(backend, circuit, seed=2)
        assert estimate.total_2q >= estimate.critical_2q > 0
        assert estimate.duration_ns > 0.0
        assert 0.0 < estimate.success_probability <= 1.0
        assert estimate.success_probability == pytest.approx(
            estimate.gate_success * estimate.decoherence_success
        )

    def test_shorter_t1_means_lower_success(self):
        backend = backend_for("Tree", "siswap")
        circuit = build_workload("QFT", 8)
        healthy = ReliabilityModel(t1_us=200.0, t2_us=200.0).estimate(backend, circuit)
        frail = ReliabilityModel(t1_us=5.0, t2_us=5.0).estimate(backend, circuit)
        assert frail.success_probability < healthy.success_probability

    def test_durations_follow_the_modulator(self):
        snail = durations_for_backend(backend_for("Tree", "siswap"))
        cr = durations_for_backend(backend_for("Heavy-Hex", "cx"))
        fsim = durations_for_backend(backend_for("Square-Lattice", "syc"))
        assert snail.name == "snail"
        assert cr.name == "cr"
        assert fsim.name == "fsim"


class TestReliabilityRanking:
    def test_ranking_sorted_best_first(self):
        backends = [
            backend_for("Heavy-Hex", "cx", name="Heavy-Hex-CX"),
            backend_for("Corral1,1", "siswap", name="Corral1,1-siswap"),
        ]
        ranking = reliability_ranking(backends, "QuantumVolume", 10, seed=3)
        assert len(ranking) == 2
        assert ranking[0].success_probability >= ranking[1].success_probability

    def test_codesigned_machine_wins_on_qv(self):
        """The paper's conclusion restated in wall-clock reliability terms."""
        backends = [
            backend_for("Heavy-Hex", "cx", name="Heavy-Hex-CX"),
            backend_for("Corral1,1", "siswap", name="Corral1,1-siswap"),
        ]
        ranking = reliability_ranking(backends, "QuantumVolume", 12, seed=3)
        assert ranking[0].backend == "Corral1,1-siswap"

    def test_report_contains_every_backend(self):
        backends = [
            backend_for("Heavy-Hex", "cx", name="Heavy-Hex-CX"),
            backend_for("Tree", "siswap", name="Tree-siswap"),
        ]
        ranking = reliability_ranking(backends, "GHZ", 8)
        report = format_reliability_report(ranking)
        assert "Heavy-Hex-CX" in report
        assert "Tree-siswap" in report
