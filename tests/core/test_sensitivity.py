"""Tests for the pulse-duration sensitivity study (paper Fig. 15, Section 6.3).

The full study (50 Haar targets, roots 2-7) is exercised by the benchmark
harness; here a scaled-down configuration checks every structural property
the paper relies on.
"""

import pytest

from repro.core import pulse_duration_sensitivity_study
from repro.core.sensitivity import format_sensitivity_report

# The module fixture optimises dozens of templates (~1 min): nightly tier.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def study():
    return pulse_duration_sensitivity_study(
        roots=(2, 3, 4),
        k_values=(2, 3, 4, 5),
        num_targets=3,
        iswap_fidelities=(0.95, 0.99, 1.0),
        seed=7,
        restarts=2,
    )


class TestStudyStructure:
    def test_all_roots_present(self, study):
        assert set(study.roots) == {2, 3, 4}
        assert set(study.root_results) == {2, 3, 4}
        assert set(study.total_fidelity) == {2, 3, 4}

    def test_infidelity_decreases_with_k(self, study):
        """Fig. 15 (top left): more applications, better decomposition."""
        for root, result in study.root_results.items():
            infidelities = [result.infidelity_by_k[k] for k in sorted(result.infidelity_by_k)]
            assert infidelities[-1] <= infidelities[0] + 1e-9

    def test_sqrt_iswap_converges_at_three(self, study):
        """Three sqrt(iSWAP) applications decompose any 2Q unitary."""
        assert study.root_results[2].converged_k == 3
        assert study.root_results[2].infidelity_by_k[3] < 1e-6

    def test_smaller_fractions_need_more_applications(self, study):
        """Fig. 15: n=4 needs a larger k than n=2 to converge."""
        assert study.root_results[4].converged_k >= study.root_results[3].converged_k
        assert study.root_results[3].converged_k >= study.root_results[2].converged_k

    def test_total_pulse_duration_shrinks_with_root(self, study):
        """Fig. 15 (top right): k/n decreases as n grows."""
        durations = [study.root_results[n].pulse_duration for n in (2, 3, 4)]
        assert durations[1] <= durations[0] + 1e-9
        assert durations[2] <= durations[0] + 1e-9

    def test_total_fidelity_improves_with_base_fidelity(self, study):
        """Fig. 15 (bottom): better iSWAP pulses, better totals."""
        for root in study.roots:
            per_base = study.total_fidelity[root]
            assert per_base[0.99] >= per_base[0.95]
            assert per_base[1.0] >= per_base[0.99]

    def test_perfect_pulse_total_fidelity_is_near_one(self, study):
        for root in study.roots:
            assert study.total_fidelity[root][1.0] > 1 - 1e-5

    def test_deeper_roots_win_at_99_percent(self, study):
        """The paper's headline: n>2 reduces infidelity at Fb=0.99."""
        reductions = study.infidelity_reduction_vs_sqiswap(0.99)
        assert reductions[4] > 0.0
        assert reductions[3] > 0.0

    def test_report_renders(self, study):
        report = format_sensitivity_report(study)
        assert "pulse-duration sensitivity study" in report
        assert "n=4" in report
        assert "Fb=0.990" in report


class TestValidation:
    def test_requires_roots(self):
        with pytest.raises(ValueError):
            pulse_duration_sensitivity_study(roots=())

    def test_non_convergent_root_falls_back_to_largest_k(self):
        """An impossible threshold converges nowhere: the reported template
        must be the largest (most accurate) size tried, never the cheapest."""
        study = pulse_duration_sensitivity_study(
            roots=(2,),
            k_values=(2, 3),
            num_targets=1,
            iswap_fidelities=(0.99,),
            convergence_threshold=-1.0,
            seed=3,
            restarts=1,
        )
        row = study.root_results[2]
        assert row.converged_k == 3
        assert row.pulse_duration == pytest.approx(3 / 2)
