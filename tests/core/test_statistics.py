"""Tests for the seed-sweep statistics helpers."""

import pytest

from repro.core import make_backend
from repro.core.statistics import (
    MetricSummary,
    compare_backends,
    format_comparison,
    ordering_stability,
    seed_sweep,
)
from repro.topology import get_topology


def backend_for(topology: str, basis: str, name=None):
    return make_backend(get_topology(topology, scale="small"), basis, name=name or topology)


class TestMetricSummary:
    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            MetricSummary.from_values("total_2q", [])

    def test_single_sample_has_zero_std(self):
        summary = MetricSummary.from_values("total_2q", [42.0])
        assert summary.mean == 42.0
        assert summary.std == 0.0
        assert summary.samples == 1

    def test_statistics_of_known_values(self):
        summary = MetricSummary.from_values("x", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.std == pytest.approx(1.0)

    def test_str_is_informative(self):
        text = str(MetricSummary.from_values("total_swaps", [5.0, 7.0]))
        assert "total_swaps" in text and "n=2" in text


class TestSeedSweep:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep("GHZ", 6, backend_for("Tree", "siswap"), seeds=[])

    def test_returns_summary_per_metric(self):
        summaries = seed_sweep(
            "QuantumVolume", 8, backend_for("Corral1,1", "siswap"), seeds=(0, 1, 2)
        )
        assert set(summaries) == {"total_swaps", "critical_swaps", "total_2q", "critical_2q"}
        for summary in summaries.values():
            assert summary.samples == 3
            assert summary.minimum <= summary.mean <= summary.maximum

    def test_deterministic_workload_has_zero_variance_in_2q(self):
        # GHZ on a topology where it embeds perfectly: every seed gives the
        # same number of native gates.
        summaries = seed_sweep("GHZ", 6, backend_for("Corral1,1", "siswap"), seeds=(0, 1, 2, 3))
        assert summaries["total_2q"].std == pytest.approx(0.0)


class TestComparisons:
    def test_compare_backends_keys(self):
        backends = [
            backend_for("Heavy-Hex", "cx", name="Heavy-Hex-CX"),
            backend_for("Corral1,1", "siswap", name="Corral1,1-siswap"),
        ]
        comparison = compare_backends(backends, "QuantumVolume", 8, seeds=(0, 1))
        assert set(comparison) == {"Heavy-Hex-CX", "Corral1,1-siswap"}

    def test_codesign_ordering_is_seed_stable(self):
        """The paper's central comparison should not be a heuristic artefact."""
        stability = ordering_stability(
            backend_for("Corral1,1", "siswap", name="corral"),
            backend_for("Heavy-Hex", "cx", name="heavyhex"),
            "QuantumVolume",
            10,
            seeds=(0, 1, 2, 3),
        )
        assert stability >= 0.75

    def test_ordering_stability_requires_seeds(self):
        with pytest.raises(ValueError):
            ordering_stability(
                backend_for("Tree", "siswap"),
                backend_for("Heavy-Hex", "cx"),
                "GHZ",
                6,
                seeds=(),
            )

    def test_format_comparison_sorted_by_mean(self):
        backends = [
            backend_for("Heavy-Hex", "cx", name="Heavy-Hex-CX"),
            backend_for("Corral1,1", "siswap", name="Corral1,1-siswap"),
        ]
        comparison = compare_backends(backends, "QuantumVolume", 8, seeds=(0, 1))
        text = format_comparison(comparison)
        assert text.index("Corral1,1-siswap") < text.index("Heavy-Hex-CX")
