"""Tests for the NuOp-style template decomposer."""

import numpy as np
import pytest

from repro.decomposition import TemplateDecomposer, decomposition_fidelity_curve
from repro.gates import CXGate, NthRootISwapGate, SqrtISwapGate, SwapGate, SycamoreGate
from repro.linalg.random import random_unitary
from repro.simulator import circuit_unitary
from repro.linalg.fidelity import hilbert_schmidt_fidelity


class TestTemplateMechanics:
    def test_parameter_count_validation(self):
        decomposer = TemplateDecomposer(SqrtISwapGate())
        with pytest.raises(ValueError):
            decomposer.template_unitary(np.zeros(5), applications=1)

    def test_rejects_one_qubit_basis(self):
        from repro.gates import HGate

        with pytest.raises(ValueError):
            TemplateDecomposer(HGate())

    def test_rejects_non_two_qubit_target(self):
        decomposer = TemplateDecomposer(SqrtISwapGate())
        with pytest.raises(ValueError):
            decomposer.decompose(np.eye(2), 1)

    def test_template_unitary_is_unitary(self):
        decomposer = TemplateDecomposer(SqrtISwapGate())
        params = np.linspace(0, 1, 12)
        unitary = decomposer.template_unitary(params, applications=1)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-9)

    def test_build_circuit_matches_template_unitary(self):
        decomposer = TemplateDecomposer(SqrtISwapGate())
        rng = np.random.default_rng(5)
        params = rng.uniform(-np.pi, np.pi, 18)
        circuit = decomposer.build_circuit(params, applications=2)
        # The circuit's little-endian unitary equals the big-endian template
        # with qubits exchanged; compare through the fidelity of the SWAP
        # conjugated matrix to avoid convention juggling in the test.
        template = decomposer.template_unitary(params, applications=2)
        swap = SwapGate().matrix()
        assert hilbert_schmidt_fidelity(
            swap @ circuit_unitary(circuit) @ swap, template
        ) == pytest.approx(1.0, abs=1e-9)


class TestConvergence:
    def test_cx_needs_two_sqiswap(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=1)
        single = decomposer.decompose(CXGate().matrix(), 1)
        double = decomposer.decompose(CXGate().matrix(), 2)
        assert single.fidelity < 0.999
        assert double.fidelity > 1 - 1e-6

    def test_swap_needs_three_sqiswap(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=2)
        assert decomposer.decompose(SwapGate().matrix(), 2).fidelity < 0.999
        assert decomposer.decompose(SwapGate().matrix(), 3).fidelity > 1 - 1e-6

    def test_random_su4_with_three_sqiswap(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=3)
        result = decomposer.decompose(random_unitary(4, 17), 3)
        assert result.fidelity > 1 - 1e-6

    def test_syc_covers_generic_in_four(self):
        """Numerical check of the coverage assumption used for SYC counts."""
        decomposer = TemplateDecomposer(SycamoreGate(), seed=4, restarts=4)
        result = decomposer.decompose(random_unitary(4, 23), 4)
        assert result.fidelity > 1 - 1e-4

    def test_adaptive_stops_at_convergence(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=5)
        result = decomposer.decompose_adaptive(CXGate().matrix(), max_applications=4)
        assert result.applications == 2
        assert result.fidelity > 1 - 1e-6

    @pytest.mark.slow
    def test_quarter_iswap_needs_more_applications_than_half(self):
        """Fig. 15 top-left behaviour: smaller fractions need larger k."""
        target = random_unitary(4, 31)
        half = TemplateDecomposer(NthRootISwapGate(2), seed=6).decompose(target, 3)
        quarter = TemplateDecomposer(NthRootISwapGate(4), seed=6).decompose(target, 3)
        assert half.fidelity > quarter.fidelity

    def test_infidelity_property(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=7)
        result = decomposer.decompose(CXGate().matrix(), 2)
        assert result.infidelity == pytest.approx(1.0 - result.fidelity)

    def test_result_circuit_two_qubit_count(self):
        decomposer = TemplateDecomposer(SqrtISwapGate(), seed=8)
        result = decomposer.decompose(CXGate().matrix(), 2)
        assert result.circuit.two_qubit_gate_count() == 2


class TestFidelityCurve:
    @pytest.mark.slow
    def test_curve_is_monotone_non_increasing(self):
        targets = [random_unitary(4, seed) for seed in (1, 2)]
        curve = decomposition_fidelity_curve(
            NthRootISwapGate(3), targets, applications_range=(2, 3, 4), restarts=2, seed=9
        )
        infidelities = [value for _, value in curve]
        assert infidelities[0] >= infidelities[1] >= infidelities[2] - 1e-9
        assert infidelities[-1] < 1e-3
