"""Tests for the basis-gate specifications."""

import numpy as np
import pytest

from repro.decomposition import (
    cx_basis,
    get_basis,
    iswap_basis,
    nth_root_iswap_basis,
    sqiswap_basis,
    syc_basis,
)
from repro.gates import CXGate, SqrtISwapGate, SwapGate


class TestStandardBases:
    def test_cx_basis(self):
        basis = cx_basis()
        assert basis.name == "cx"
        assert basis.modulator == "CR"
        assert basis.pulse_duration == 1.0
        assert np.allclose(basis.matrix(), CXGate().matrix())

    def test_sqiswap_basis(self):
        basis = sqiswap_basis()
        assert basis.modulator == "SNAIL"
        assert basis.pulse_duration == 0.5
        assert np.allclose(basis.matrix(), SqrtISwapGate().matrix())

    def test_syc_basis(self):
        basis = syc_basis()
        assert basis.modulator == "FSIM"
        assert basis.count(np.eye(4)) == 0

    def test_iswap_basis(self):
        assert iswap_basis().pulse_duration == 1.0

    def test_nth_root_basis_duration(self):
        for root in (2, 3, 4, 8):
            assert nth_root_iswap_basis(root).pulse_duration == pytest.approx(1.0 / root)

    def test_nth_root_basis_reuses_sqiswap_for_two(self):
        assert nth_root_iswap_basis(2).name == "siswap"

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            nth_root_iswap_basis(0)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [("cx", "cx"), ("cnot", "cx"), ("sqiswap", "siswap"), ("sycamore", "syc"), ("iswap", "iswap"), ("iswap_root4", "iswap_root4")],
    )
    def test_get_basis_aliases(self, name, expected):
        assert get_basis(name).name == expected

    def test_get_basis_unknown(self):
        with pytest.raises(ValueError):
            get_basis("xy")


class TestBehaviour:
    def test_count_and_duration_for_swap(self):
        swap = SwapGate().matrix()
        assert cx_basis().count(swap) == 3
        assert cx_basis().duration_for(swap) == pytest.approx(3.0)
        assert sqiswap_basis().count(swap) == 3
        assert sqiswap_basis().duration_for(swap) == pytest.approx(1.5)

    def test_cx_cheaper_in_duration_on_siswap_basis(self):
        """The sqrt(iSWAP) basis implements CNOT in one iSWAP-unit of pulse."""
        cx = CXGate().matrix()
        assert sqiswap_basis().duration_for(cx) == pytest.approx(1.0)
        assert cx_basis().duration_for(cx) == pytest.approx(1.0)

    def test_str(self):
        assert str(cx_basis()) == "cx"

    def test_gate_factory_returns_fresh_instances(self):
        basis = sqiswap_basis()
        assert basis.gate() is not basis.gate()
