"""Tests for the basis-coverage counting rules (paper Observation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    basis_count,
    cnot_count,
    expected_haar_average,
    nth_root_iswap_count,
    sqiswap_count,
    syc_count,
)
from repro.gates import (
    CPhaseGate,
    CXGate,
    CZGate,
    ISwapGate,
    NthRootISwapGate,
    SqrtISwapGate,
    SwapGate,
    SycamoreGate,
)
from repro.linalg.matrices import kron
from repro.linalg.random import random_su2, random_unitary
from repro.linalg.weyl import weyl_coordinates


class TestCnotCounts:
    def test_local_gate_is_free(self):
        assert cnot_count(np.eye(4)) == 0
        assert cnot_count(kron(random_su2(1), random_su2(2))) == 0

    def test_cx_and_cz_cost_one(self):
        assert cnot_count(CXGate().matrix()) == 1
        assert cnot_count(CZGate().matrix()) == 1

    def test_cphase_costs_two(self):
        assert cnot_count(CPhaseGate(0.7).matrix()) == 2

    def test_iswap_costs_two(self):
        assert cnot_count(ISwapGate().matrix()) == 2

    def test_swap_costs_three(self):
        assert cnot_count(SwapGate().matrix()) == 3

    def test_generic_su4_costs_three(self):
        assert cnot_count(random_unitary(4, 5)) == 3


class TestSqiswapCounts:
    def test_sqiswap_itself_costs_one(self):
        assert sqiswap_count(SqrtISwapGate().matrix()) == 1

    def test_cx_costs_two(self):
        """CNOT sits inside the 2-application coverage set of sqrt(iSWAP)."""
        assert sqiswap_count(CXGate().matrix()) == 2

    def test_iswap_costs_two(self):
        assert sqiswap_count(ISwapGate().matrix()) == 2

    def test_swap_costs_three(self):
        """SWAP lies outside the 2-application coverage set (Huang et al.)."""
        assert sqiswap_count(SwapGate().matrix()) == 3

    def test_generic_unitaries_cost_at_most_three(self):
        for seed in range(20):
            assert sqiswap_count(random_unitary(4, seed)) in (2, 3)

    def test_haar_average_beats_cnot(self):
        """Observation 1: sqrt(iSWAP) needs 2 pulses far more often than CNOT."""
        cx_avg = expected_haar_average("cx", samples=120, seed=3)
        sis_avg = expected_haar_average("siswap", samples=120, seed=3)
        assert sis_avg < cx_avg
        assert cx_avg == pytest.approx(3.0, abs=0.05)
        assert 2.0 < sis_avg < 2.5


class TestSycCounts:
    def test_syc_itself_costs_one(self):
        assert syc_count(SycamoreGate().matrix()) == 1

    def test_generic_su4_costs_four(self):
        """Paper Observation 1: the analytic SYC decomposition uses 4 gates."""
        assert syc_count(random_unitary(4, 9)) == 4

    def test_cx_costs_two(self):
        assert syc_count(CXGate().matrix()) == 2

    def test_local_is_free(self):
        assert syc_count(np.eye(4)) == 0

    def test_never_cheaper_than_cnot(self):
        for seed in range(10):
            unitary = random_unitary(4, 40 + seed)
            assert syc_count(unitary) >= cnot_count(unitary)


class TestNthRootCounts:
    def test_matches_sqiswap_for_n2(self):
        for seed in range(5):
            unitary = random_unitary(4, seed)
            assert nth_root_iswap_count(unitary, 2) == sqiswap_count(unitary)

    def test_own_class_costs_one(self):
        for root in (3, 4, 5):
            assert nth_root_iswap_count(NthRootISwapGate(root).matrix(), root) == 1

    def test_deeper_roots_need_more_applications(self):
        swap = SwapGate().matrix()
        counts = [nth_root_iswap_count(swap, n) for n in (2, 3, 4, 6)]
        assert counts == sorted(counts)
        assert counts[0] == 3

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            nth_root_iswap_count(np.eye(4), 0)


class TestDispatch:
    def test_basis_count_names(self):
        unitary = random_unitary(4, 2)
        assert basis_count(unitary, "cx") == cnot_count(unitary)
        assert basis_count(unitary, "siswap") == sqiswap_count(unitary)
        assert basis_count(unitary, "syc") == syc_count(unitary)
        assert basis_count(unitary, "iswap_root3") == nth_root_iswap_count(unitary, 3)

    def test_unknown_basis(self):
        with pytest.raises(ValueError):
            basis_count(np.eye(4), "b-gate")

    def test_accepts_coordinates_directly(self):
        coords = weyl_coordinates(CXGate().matrix())
        assert cnot_count(coords) == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100000))
    def test_counts_are_bounded_property(self, seed):
        """Counting rules always return 0-3 (CX/siswap) or 0-4 (SYC)."""
        unitary = random_unitary(4, seed)
        assert 0 <= cnot_count(unitary) <= 3
        assert 0 <= sqiswap_count(unitary) <= 3
        assert 0 <= syc_count(unitary) <= 4
