"""Tests for the exact named-gate translation rules."""

import pytest

from repro.circuits import QuantumCircuit
from repro.decomposition import (
    ccx_to_cx,
    cphase_to_cx,
    cz_to_cx,
    expand_named_gate,
    iswap_to_cx,
    rxx_to_cx,
    rzz_to_cx,
    swap_to_cx,
)
from repro.decomposition.exact import cx_to_cz
from repro.gates import (
    CCXGate,
    CPhaseGate,
    CXGate,
    CZGate,
    ISwapGate,
    RXXGate,
    RZZGate,
    SwapGate,
)
from repro.simulator import circuits_equivalent


def _reference(gate, num_qubits=2):
    circuit = QuantumCircuit(num_qubits)
    circuit.append(gate, tuple(range(num_qubits)))
    return circuit


class TestExactRules:
    @pytest.mark.parametrize(
        "rule,gate",
        [
            (swap_to_cx(), SwapGate()),
            (cz_to_cx(), CZGate()),
            (cx_to_cz(), CXGate()),
            (cphase_to_cx(0.8), CPhaseGate(0.8)),
            (rzz_to_cx(1.3), RZZGate(1.3)),
            (rxx_to_cx(0.4), RXXGate(0.4)),
            (iswap_to_cx(), ISwapGate()),
        ],
        ids=["swap", "cz", "cx_via_cz", "cp", "rzz", "rxx", "iswap"],
    )
    def test_rule_is_exact(self, rule, gate):
        assert circuits_equivalent(rule, _reference(gate), up_to_global_phase=True)

    def test_toffoli_rule_is_exact(self):
        assert circuits_equivalent(ccx_to_cx(), _reference(CCXGate(), 3), up_to_global_phase=True)

    def test_swap_rule_uses_three_cx(self):
        assert swap_to_cx().count_ops() == {"cx": 3}

    def test_toffoli_rule_uses_six_cx(self):
        assert ccx_to_cx().count_ops()["cx"] == 6

    def test_cphase_rule_uses_two_cx(self):
        assert cphase_to_cx(0.3).count_ops()["cx"] == 2

    def test_negative_angles(self):
        assert circuits_equivalent(
            rzz_to_cx(-0.9), _reference(RZZGate(-0.9)), up_to_global_phase=True
        )


class TestExpandNamedGate:
    def test_expand_ccx(self):
        assert expand_named_gate(CCXGate()).num_qubits == 3

    def test_expand_parameterised(self):
        circuit = expand_named_gate(CPhaseGate(0.55))
        assert circuits_equivalent(circuit, _reference(CPhaseGate(0.55)), up_to_global_phase=True)

    def test_unknown_gate_rejected(self):
        from repro.gates import SycamoreGate

        with pytest.raises(ValueError):
            expand_named_gate(SycamoreGate())
