"""Tests for the Corral-scaling extension experiment."""

import pytest

from repro.experiments.corral_scaling import corral_scaling_study, format_corral_scaling


@pytest.fixture(scope="module")
def rows():
    return corral_scaling_study(post_counts=(8, 12), qv_fraction=0.5, seed=3)


class TestCorralScaling:
    def test_row_per_ring_size(self, rows):
        assert [row.num_posts for row in rows] == [8, 12]
        assert [row.num_qubits for row in rows] == [16, 24]

    def test_corral_connectivity_is_constant(self, rows):
        """The corral's average degree stays ~6 regardless of ring size."""
        for row in rows:
            assert row.corral_avg_connectivity == pytest.approx(6.0, abs=0.1)

    def test_corral_diameter_grows_with_ring(self, rows):
        assert rows[1].corral_diameter >= rows[0].corral_diameter

    def test_hypercube_diameter_grows_slower(self, rows):
        """The hypercube's log-scaling diameter is the aspirational target."""
        corral_growth = rows[1].corral_diameter - rows[0].corral_diameter
        cube_growth = rows[1].hypercube_diameter - rows[0].hypercube_diameter
        assert cube_growth <= corral_growth + 1e-9

    def test_swap_counts_positive(self, rows):
        for row in rows:
            assert row.corral_qv_swaps >= 0
            assert row.hypercube_qv_swaps >= 0

    def test_as_dict_and_formatting(self, rows):
        record = rows[0].as_dict()
        assert {"posts", "qubits", "corral_qv_swaps"} <= set(record)
        rendered = format_corral_scaling(rows)
        assert "Corral scaling study" in rendered
        assert str(rows[-1].num_qubits) in rendered
