"""End-to-end integration tests across the whole stack.

These tests exercise the complete pipeline the way the examples and
benchmarks do: build a workload, transpile it onto a co-designed backend,
check the metrics, and (for small circuits, in synthesis mode) verify that
the transpiled circuit still implements the original algorithm.
"""

import numpy as np
import pytest

from repro import make_target, transpile
from repro.core import FidelityModel
from repro.simulator import StatevectorSimulator
from repro.topology import corral_topology, get_topology, square_lattice
from repro.transpiler import Layout
from repro.workloads import build_workload, ghz_circuit, quantum_volume_circuit


def _undo_layout(state_width, final_layout: Layout, physical_state):
    """Map a physical-register state back to the virtual register order."""
    # Build the permutation of basis indices induced by the final layout.
    num_physical = int(np.log2(len(physical_state)))
    amplitudes = np.zeros(2 ** state_width, dtype=complex)
    for index, amplitude in enumerate(physical_state):
        if abs(amplitude) < 1e-12:
            continue
        virtual_index = 0
        valid = True
        for physical in range(num_physical):
            bit = (index >> physical) & 1
            virtual = final_layout.virtual(physical)
            if virtual is None or virtual >= state_width:
                if bit:
                    valid = False
                    break
                continue
            virtual_index |= bit << virtual
        if valid:
            amplitudes[virtual_index] += amplitude
    return amplitudes


class TestGHZEndToEnd:
    @pytest.mark.parametrize("topology_name", ["Corral1,1", "Tree", "Hypercube"])
    def test_ghz_state_survives_transpilation(self, topology_name):
        """Transpile GHZ-6 in synthesis mode and verify the output state."""
        circuit = ghz_circuit(6)
        coupling_map = get_topology(topology_name, "small")
        result = transpile(
            circuit,
            coupling_map,
            basis_name="siswap",
            translation_mode="synthesis",
            seed=2,
        )
        simulator = StatevectorSimulator(max_qubits=coupling_map.num_qubits)
        physical_state = simulator.run(result.circuit)
        virtual_state = _undo_layout(6, result.final_layout, physical_state)
        probabilities = np.abs(virtual_state) ** 2
        assert probabilities[0] == pytest.approx(0.5, abs=1e-4)
        assert probabilities[-1] == pytest.approx(0.5, abs=1e-4)

    def test_ghz_cx_basis_count_mode_counts(self):
        circuit = ghz_circuit(8)
        result = transpile(circuit, get_topology("Tree", "small"), basis_name="cx", seed=1)
        # Every CX stays one CX; SWAPs (if any) cost three each.
        assert result.metrics.total_2q == 7 + 3 * result.metrics.total_swaps


class TestCodesignAdvantageEndToEnd:
    def test_corral_siswap_beats_square_lattice_cx(self):
        """The paper's central co-design claim at the prototype scale."""
        circuit = quantum_volume_circuit(12, seed=9)
        corral = make_target(corral_topology(8, (1, 1)), "siswap", name="corral-sis")
        lattice = make_target(square_lattice(4, 4), "cx", name="lattice-cx")
        corral_metrics = transpile(circuit, corral, seed=1).metrics
        lattice_metrics = transpile(circuit, lattice, seed=1).metrics
        assert corral_metrics.total_2q < lattice_metrics.total_2q
        assert corral_metrics.critical_2q < lattice_metrics.critical_2q
        model = FidelityModel()
        assert model.combined(corral_metrics) > model.combined(lattice_metrics)

    def test_every_workload_transpiles_on_every_small_design_point(self):
        from repro.core import design_targets
        from repro.workloads import PAPER_WORKLOADS

        targets = design_targets("small")
        for workload in PAPER_WORKLOADS:
            circuit = build_workload(workload, 8, seed=0)
            for target in targets.values():
                metrics = transpile(circuit, target, seed=0).metrics
                assert metrics.total_2q >= metrics.critical_2q > 0


class TestLargeScaleSmoke:
    def test_tree84_accepts_40_qubit_qft(self):
        circuit = build_workload("QFT", 40)
        target = make_target(get_topology("Tree", "large"), "siswap")
        metrics = transpile(circuit, target, seed=0).metrics
        assert metrics.circuit_qubits == 40
        assert metrics.total_2q > 0
