"""Tests for the frequency-crowding and duration-aware scheduling studies."""

import pytest

from repro.experiments.frequency_study import (
    feasible_modulators,
    frequency_crowding_study,
)
from repro.experiments.scheduling_study import (
    duration_series,
    format_scheduling_report,
    scheduling_study,
)


class TestFrequencyStudy:
    def test_large_scale_rows_cover_all_modulators(self):
        rows = frequency_crowding_study(scale="large", topologies=("Heavy-Hex", "Tree"))
        assert {row.modulator for row in rows} == {"CR", "FSIM", "SNAIL"}
        assert all(row.num_qubits == 84 for row in rows)

    def test_snail_supports_the_snail_topologies_at_scale(self):
        rows = frequency_crowding_study(scale="large", topologies=("Tree", "Tree-RR"))
        snail_rows = [row for row in rows if row.modulator == "SNAIL"]
        assert all(row.feasible for row in snail_rows)

    def test_heavy_hex_feasible_for_every_modulator(self):
        """Heavy-Hex was designed to dodge frequency collisions — all budgets fit it."""
        rows = frequency_crowding_study(scale="small", topologies=("Heavy-Hex",))
        assert all(row.feasible for row in rows)

    def test_feasibility_gap_motivates_the_codesign(self):
        """Rich topologies are only allocatable by the SNAIL budget."""
        rows = frequency_crowding_study(
            scale="small", topologies=("Corral1,1", "Corral1,2", "Tree")
        )
        mapping = feasible_modulators(rows)
        for topology, modulators in mapping.items():
            assert "SNAIL" in modulators, topology
        assert "CR" not in mapping["Corral1,2"]


class TestSchedulingStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return scheduling_study(
            scale="small", workloads=("QuantumVolume",), sizes=(8, 12), seed=5
        )

    def test_rows_cover_all_small_design_points(self, rows):
        labels = {row.design_point for row in rows}
        assert "Heavy-Hex-CX" in labels
        assert "Corral1,1-siswap" in labels
        assert "Square-Lattice-SYC" in labels

    def test_duration_positive_and_parallelism_at_least_one(self, rows):
        for row in rows:
            assert row.duration_ns > 0.0
            assert row.average_parallelism >= 1.0
            assert 0.0 < row.success_probability <= 1.0

    def test_duration_grows_with_circuit_size(self, rows):
        for label in {row.design_point for row in rows}:
            series = sorted(
                (row.circuit_qubits, row.duration_ns)
                for row in rows
                if row.design_point == label
            )
            assert series[-1][1] > series[0][1]

    def test_snail_beats_cr_in_wall_clock_duration(self, rows):
        """siswap pulses are ~200 ns vs ~370 ns CR CNOTs and need fewer of them."""
        by_label = {
            (row.design_point, row.circuit_qubits): row.duration_ns for row in rows
        }
        assert by_label[("Corral1,1-siswap", 12)] < by_label[("Heavy-Hex-CX", 12)]

    def test_duration_series_shape(self, rows):
        series = duration_series(rows, "QuantumVolume")
        for label, values in series.items():
            assert [size for size, _ in values] == sorted(size for size, _ in values)

    def test_report_renders(self, rows):
        report = format_scheduling_report(rows)
        assert "Duration-aware co-design study" in report
        assert "Corral1,1-siswap" in report
