"""Tests for the headline-ratio and chevron experiments."""

import pytest

from repro.experiments import chevron_summary, figure6_study, headline_study, format_headline_report
from repro.experiments.paper_values import HEADLINE_RATIOS, NROOT_INFIDELITY_REDUCTION


class TestHeadline:
    @pytest.fixture(scope="class")
    def ratios(self):
        # A reduced QV size grid keeps the test fast while still showing the
        # co-design advantage clearly.
        return headline_study(sizes=[16, 24], seed=4)

    def test_all_ratios_exceed_one(self, ratios):
        """Hypercube+siswap must beat Heavy-Hex+CX on every aggregate."""
        for value in ratios.as_dict().values():
            assert value > 1.0

    def test_ratios_fall_in_paper_like_band(self, ratios):
        """The advantage should be a clear multiple, in the paper's ballpark.

        The paper reports 2.57-6.11x over QV 16-80; with the reduced size
        grid used here we only require a clear (>1.5x) and sane (<12x)
        advantage on every aggregate.
        """
        for value in ratios.as_dict().values():
            assert 1.5 < value < 12.0

    def test_comparison_table_contains_paper_values(self, ratios):
        comparison = ratios.compared_to_paper()
        assert comparison["hypercube_vs_heavyhex_total_swaps"]["paper"] == pytest.approx(2.57)
        assert set(comparison) == set(ratios.as_dict())

    def test_report_rendering(self, ratios):
        report = format_headline_report(ratios)
        assert "paper" in report and "measured" in report


class TestPaperValueTables:
    def test_headline_constants_present(self):
        assert HEADLINE_RATIOS["hypercube_siswap_vs_heavyhex_cx_critical_2q"] == pytest.approx(6.11)
        assert NROOT_INFIDELITY_REDUCTION[4] == pytest.approx(0.25)


class TestChevronExperiment:
    def test_default_axes_match_figure6(self):
        data = figure6_study(pulse_points=41, detuning_points=11)
        assert data.pulse_lengths_ns[-1] == pytest.approx(2000.0)
        assert data.detunings_mhz[0] == pytest.approx(-1.5)

    def test_summary_string(self):
        data = figure6_study(pulse_points=41, detuning_points=11)
        summary = chevron_summary(data)
        assert "exchange period" in summary
        assert "pulse lengths" in summary
