"""Sanity checks on the transcribed paper reference values."""

import pytest

from repro.experiments.paper_values import (
    HEADLINE_RATIOS,
    NROOT_INFIDELITY_REDUCTION,
    TABLE1,
    TABLE2,
)
from repro.topology import available_topologies


class TestPaperValues:
    def test_table1_names_exist_in_registry(self):
        names = available_topologies("small")
        assert set(TABLE1) <= set(names)

    def test_table2_names_exist_in_registry(self):
        names = available_topologies("large")
        assert set(TABLE2) <= set(names)

    def test_table_rows_are_well_formed(self):
        for table in (TABLE1, TABLE2):
            for name, row in table.items():
                qubits, diameter, avg_distance, avg_connectivity = row
                assert qubits in (16, 20, 84), name
                assert diameter >= avg_distance > 0
                assert 2.0 <= avg_connectivity <= 6.0

    def test_headline_ratios_are_advantages(self):
        for key, value in HEADLINE_RATIOS.items():
            if "reduction" in key:
                assert 0.0 < value < 1.0, key
            else:
                assert value > 1.0, key

    def test_abstract_numbers_transcribed(self):
        assert HEADLINE_RATIOS["hypercube_siswap_vs_heavyhex_cx_total_2q"] == pytest.approx(3.16)
        assert HEADLINE_RATIOS["hypercube_vs_heavyhex_critical_swaps"] == pytest.approx(5.63)

    def test_nroot_reductions(self):
        assert set(NROOT_INFIDELITY_REDUCTION) == {3, 4, 5}
        assert max(NROOT_INFIDELITY_REDUCTION.values()) == NROOT_INFIDELITY_REDUCTION[4]
