"""Tests for the SWAP-count (Figs. 4/11/12) and co-design (Figs. 13/14) studies.

The full paper-scale sweeps are run by the benchmark harness; these tests
use small workload grids so the whole suite stays fast, while still
checking the qualitative relationships the paper reports.
"""

import pytest

from repro.core.codesign import CodesignPoint
from repro.experiments import (
    FIG11_TOPOLOGIES,
    FIG12_TOPOLOGIES,
    FIG4_TOPOLOGIES,
    codesign_study,
    format_gate_report,
    format_swap_report,
    gate_series,
    swap_series,
    swap_study,
)
from repro.experiments.swap_study import default_sizes, full_runs_enabled


@pytest.fixture(scope="module")
def small_swap_result():
    return swap_study(
        "small",
        ["Square-Lattice", "Hypercube", "Corral1,2"],
        workloads=["QAOAVanilla", "GHZ"],
        sizes=[8, 12],
        seed=5,
    )


@pytest.fixture(scope="module")
def small_codesign_result():
    points = [
        CodesignPoint("Heavy-Hex-CX", "Heavy-Hex", "cx"),
        CodesignPoint("Corral1,1-siswap", "Corral1,1", "siswap"),
    ]
    return codesign_study(
        "small",
        design_points=points,
        workloads=["QuantumVolume"],
        sizes=[8, 12],
        seed=5,
    )


class TestConfiguration:
    def test_figure_topology_lists_match_paper_legends(self):
        assert "Lattice+AltDiagonals" in FIG4_TOPOLOGIES
        assert "Corral1,1" in FIG11_TOPOLOGIES and "Corral1,2" in FIG11_TOPOLOGIES
        assert set(FIG12_TOPOLOGIES) >= {"Heavy-Hex", "Tree", "Tree-RR", "Hypercube"}

    def test_default_sizes_quick_vs_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_runs_enabled()
        quick = default_sizes("small")
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_runs_enabled()
        full = default_sizes("small")
        assert len(full) > len(quick)
        assert max(full) == 16


class TestSwapStudy:
    def test_grid_size(self, small_swap_result):
        assert len(small_swap_result) == 3 * 2 * 2

    def test_series_extraction(self, small_swap_result):
        series = swap_series(small_swap_result, "QAOAVanilla", "total_swaps")
        assert set(series) == {"Square-Lattice", "Hypercube", "Corral1,2"}
        for values in series.values():
            assert len(values) == 2

    def test_richer_topologies_need_fewer_swaps(self, small_swap_result):
        """Observation 2: connectivity reduces data movement."""
        series = swap_series(small_swap_result, "QAOAVanilla", "total_swaps")
        lattice = dict(series["Square-Lattice"])
        corral = dict(series["Corral1,2"])
        assert corral[12] <= lattice[12]

    def test_critical_swaps_not_exceeding_total(self, small_swap_result):
        for record in small_swap_result:
            assert record.critical_swaps <= record.total_swaps

    def test_report_rendering(self, small_swap_result):
        report = format_swap_report(small_swap_result, "total_swaps")
        assert "QAOAVanilla" in report and "Hypercube" in report


class TestCodesignStudy:
    def test_codesign_advantage(self, small_codesign_result):
        """Fig. 13: Corral + sqrt(iSWAP) beats Heavy-Hex + CX on QV."""
        series = gate_series(small_codesign_result, "QuantumVolume", "total_2q")
        heavy = dict(series["Heavy-Hex-CX"])
        corral = dict(series["Corral1,1-siswap"])
        for size in (8, 12):
            assert corral[size] < heavy[size]

    def test_critical_2q_advantage(self, small_codesign_result):
        series = gate_series(small_codesign_result, "QuantumVolume", "critical_2q")
        heavy = dict(series["Heavy-Hex-CX"])
        corral = dict(series["Corral1,1-siswap"])
        assert corral[12] < heavy[12]

    def test_weighted_duration_present(self, small_codesign_result):
        for record in small_codesign_result:
            assert record.weighted_duration > 0

    def test_report_rendering(self, small_codesign_result):
        report = format_gate_report(small_codesign_result, "critical_2q")
        assert "QuantumVolume" in report and "Corral1,1-siswap" in report
