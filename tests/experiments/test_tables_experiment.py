"""Tests for the Table 1/2 experiment module."""

from repro.experiments import format_table_comparison, table1, table2
from repro.experiments.paper_values import TABLE1, TABLE2


class TestTable1:
    def test_all_paper_rows_present(self):
        names = {row.name for row in table1()}
        assert names == set(TABLE1)

    def test_rows_carry_paper_reference(self):
        for row in table1():
            assert row.paper == TABLE1[row.name]

    def test_as_row_keys(self):
        row = table1()[0].as_row()
        assert {"name", "qubits", "diameter", "paper_diameter"} <= set(row)

    def test_exact_rows_match_paper(self):
        exact = {"Square-Lattice", "Tree", "Tree-RR", "Corral1,1", "Corral1,2", "Hypercube"}
        for row in table1():
            if row.name in exact:
                assert row.measured.diameter == row.paper[1]
                assert abs(row.measured.average_connectivity - row.paper[3]) < 0.01


class TestTable2:
    def test_all_paper_rows_present(self):
        names = {row.name for row in table2()}
        assert names == set(TABLE2)

    def test_qubit_counts_match(self):
        for row in table2():
            assert row.measured.num_qubits == row.paper[0]

    def test_formatting(self):
        rendered = format_table_comparison(table2(), "Table 2")
        assert rendered.startswith("Table 2")
        assert "Hypercube" in rendered
