"""Tests for the greedy pump-tone allocator and the crowding study."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.frequency_study import (
    feasible_modulators,
    format_frequency_report,
    frequency_crowding_study,
)
from repro.frequency.allocation import FrequencyAllocator, allocate_frequencies
from repro.frequency.modulators import ModulatorSpec, cr_modulator, snail_modulator
from repro.topology import CouplingMap, get_topology


def narrow_modulator(num_tones: int, separation: float = 0.5) -> ModulatorSpec:
    """A synthetic modulator whose band holds exactly ``num_tones`` tones."""
    return ModulatorSpec(
        name=f"narrow{num_tones}",
        band=(5.0, 5.0 + separation * (num_tones - 1) + 1e-6),
        min_separation=separation,
        max_degree=8,
        native_basis="cx",
    )


class TestAllocator:
    def test_rejects_bad_grid_step(self):
        with pytest.raises(ValueError):
            FrequencyAllocator(snail_modulator(), grid_step=0.0)

    def test_single_edge_gets_lowest_tone(self):
        plan = allocate_frequencies(CouplingMap([(0, 1)]), snail_modulator())
        assert plan.is_feasible
        assert plan.assignments[(0, 1)] == pytest.approx(snail_modulator().band[0])

    def test_disjoint_edges_may_share_a_tone(self):
        plan = allocate_frequencies(CouplingMap([(0, 1), (2, 3)]), snail_modulator())
        frequencies = list(plan.assignments.values())
        assert frequencies[0] == pytest.approx(frequencies[1])

    def test_neighboring_edges_respect_separation(self):
        spec = snail_modulator()
        plan = allocate_frequencies(CouplingMap.line(5), spec)
        assert plan.is_feasible
        assert plan.minimum_neighborhood_separation() >= spec.min_separation - 1e-9

    def test_star_with_too_many_spokes_collides(self):
        # A 5-spoke star needs 5 mutually separated tones; give it room for 3.
        star = CouplingMap([(0, spoke) for spoke in range(1, 6)])
        plan = allocate_frequencies(star, narrow_modulator(3))
        assert not plan.is_feasible
        assert len(plan.collisions) == 2
        assert 0.0 < plan.collision_fraction() < 1.0

    def test_star_with_enough_band_is_feasible(self):
        star = CouplingMap([(0, spoke) for spoke in range(1, 6)])
        plan = allocate_frequencies(star, narrow_modulator(5))
        assert plan.is_feasible

    def test_degree_violation_recorded(self):
        star = CouplingMap([(0, spoke) for spoke in range(1, 6)])
        spec = ModulatorSpec("lim", band=(1.0, 9.0), min_separation=0.1, max_degree=4, native_basis="cx")
        plan = allocate_frequencies(star, spec)
        assert plan.degree_violations == [0]
        assert not plan.is_feasible

    def test_bandwidth_used_zero_for_single_edge(self):
        plan = allocate_frequencies(CouplingMap([(0, 1)]), snail_modulator())
        assert plan.bandwidth_used() == pytest.approx(0.0)

    def test_crowding_score_grows_with_degree(self):
        spec = cr_modulator()
        sparse = allocate_frequencies(get_topology("Heavy-Hex", scale="small"), spec)
        dense = allocate_frequencies(get_topology("Corral1,2", scale="small"), spec)
        assert dense.crowding_score() > sparse.crowding_score()

    @given(num_qubits=st.integers(min_value=3, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_ring_always_feasible_for_snail(self, num_qubits):
        plan = allocate_frequencies(CouplingMap.ring(num_qubits), snail_modulator())
        assert plan.is_feasible
        assert plan.minimum_neighborhood_separation() >= snail_modulator().min_separation - 1e-9

    @given(num_qubits=st.integers(min_value=4, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_every_edge_is_either_assigned_or_collided(self, num_qubits):
        device = CouplingMap.full(num_qubits)
        plan = allocate_frequencies(device, cr_modulator())
        assert plan.num_edges == device.num_edges()


class TestPaperTopologies:
    def test_snail_allocates_all_small_snail_topologies(self):
        for name in ("Tree", "Tree-RR", "Corral1,1", "Corral1,2"):
            plan = allocate_frequencies(get_topology(name, scale="small"), snail_modulator())
            assert plan.is_feasible, name

    def test_cr_allocates_heavy_hex(self):
        plan = allocate_frequencies(get_topology("Heavy-Hex", scale="small"), cr_modulator())
        assert plan.is_feasible

    def test_cr_struggles_on_corral(self):
        """The paper's claim: CR-style budgets cannot support degree-6 corrals."""
        plan = allocate_frequencies(get_topology("Corral1,2", scale="small"), cr_modulator())
        assert not plan.is_feasible


class TestFrequencyStudy:
    def test_study_covers_all_pairs(self):
        rows = frequency_crowding_study(scale="small", topologies=("Heavy-Hex", "Tree"))
        assert len(rows) == 2 * 3
        assert {row.modulator for row in rows} == {"CR", "FSIM", "SNAIL"}

    def test_snail_feasible_everywhere_small(self):
        rows = frequency_crowding_study(scale="small")
        snail_rows = [row for row in rows if row.modulator == "SNAIL"]
        assert snail_rows and all(row.feasible for row in snail_rows)

    def test_feasible_modulators_mapping(self):
        rows = frequency_crowding_study(scale="small", topologies=("Corral1,2",))
        mapping = feasible_modulators(rows)
        assert "SNAIL" in mapping["Corral1,2"]
        assert "CR" not in mapping["Corral1,2"]

    def test_report_renders_all_rows(self):
        rows = frequency_crowding_study(scale="small", topologies=("Heavy-Hex",))
        report = format_frequency_report(rows)
        assert "Heavy-Hex" in report
        assert "SNAIL" in report and "CR" in report
