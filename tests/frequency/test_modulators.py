"""Tests for modulator frequency budgets."""

import pytest

from repro.frequency.modulators import (
    ModulatorSpec,
    cr_modulator,
    fsim_modulator,
    get_modulator,
    snail_modulator,
)


class TestModulatorSpec:
    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            ModulatorSpec("bad", band=(5.0, 4.0), min_separation=0.1, max_degree=2, native_basis="cx")

    def test_rejects_non_positive_separation(self):
        with pytest.raises(ValueError):
            ModulatorSpec("bad", band=(4.0, 5.0), min_separation=0.0, max_degree=2, native_basis="cx")

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            ModulatorSpec("bad", band=(4.0, 5.0), min_separation=0.1, max_degree=0, native_basis="cx")

    def test_bandwidth(self):
        spec = ModulatorSpec("m", band=(4.0, 6.5), min_separation=0.5, max_degree=4, native_basis="cx")
        assert spec.bandwidth == pytest.approx(2.5)

    def test_tones_per_neighborhood(self):
        spec = ModulatorSpec("m", band=(4.0, 5.0), min_separation=0.25, max_degree=4, native_basis="cx")
        assert spec.tones_per_neighborhood == 5


class TestPresets:
    def test_snail_has_widest_band(self):
        assert snail_modulator().bandwidth > cr_modulator().bandwidth
        assert snail_modulator().bandwidth > fsim_modulator().bandwidth

    def test_snail_supports_at_least_two_full_modules_per_qubit(self):
        # A SNAIL addresses up to 6 modes and a qubit can sit in two modules.
        assert snail_modulator().max_degree >= 8
        assert cr_modulator().max_degree <= 4

    def test_cr_band_is_narrow(self):
        assert cr_modulator().bandwidth < 1.0

    def test_native_bases_match_the_paper(self):
        assert snail_modulator().native_basis == "siswap"
        assert cr_modulator().native_basis == "cx"
        assert fsim_modulator().native_basis == "syc"

    def test_lookup_is_case_insensitive(self):
        assert get_modulator("Snail").name == "SNAIL"
        assert get_modulator("CR").name == "CR"

    def test_unknown_modulator_raises(self):
        with pytest.raises(ValueError):
            get_modulator("laser")
