"""Tests for the single-qubit gate library."""

import numpy as np
import pytest

from repro.gates import (
    HGate,
    IGate,
    PhaseGate,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    SXGate,
    TdgGate,
    TGate,
    U3Gate,
    XGate,
    YGate,
    ZGate,
)
from repro.linalg.matrices import is_unitary, matrices_equal

ALL_FIXED = [IGate(), XGate(), YGate(), ZGate(), HGate(), SGate(), SdgGate(), TGate(), TdgGate(), SXGate()]


class TestFixedGates:
    @pytest.mark.parametrize("gate", ALL_FIXED, ids=lambda g: g.name)
    def test_unitary(self, gate):
        assert is_unitary(gate.matrix())

    def test_h_squares_to_identity(self):
        h = HGate().matrix()
        assert np.allclose(h @ h, np.eye(2))

    def test_s_is_sqrt_z(self):
        assert np.allclose(SGate().matrix() @ SGate().matrix(), ZGate().matrix())

    def test_t_is_sqrt_s(self):
        assert np.allclose(TGate().matrix() @ TGate().matrix(), SGate().matrix())

    def test_sx_is_sqrt_x(self):
        assert np.allclose(SXGate().matrix() @ SXGate().matrix(), XGate().matrix())

    def test_sdg_inverts_s(self):
        assert np.allclose(SGate().matrix() @ SdgGate().matrix(), np.eye(2))

    def test_inverses_registered(self):
        assert isinstance(SGate().inverse(), SdgGate)
        assert isinstance(TGate().inverse(), TdgGate)
        assert isinstance(XGate().inverse(), XGate)

    def test_pauli_algebra(self):
        x, y, z = XGate().matrix(), YGate().matrix(), ZGate().matrix()
        assert np.allclose(x @ y, 1j * z)


class TestRotationGates:
    @pytest.mark.parametrize("gate_cls", [RXGate, RYGate, RZGate, PhaseGate])
    def test_zero_angle_is_identity(self, gate_cls):
        assert matrices_equal(gate_cls(0.0).matrix(), np.eye(2), up_to_global_phase=True)

    @pytest.mark.parametrize("gate_cls", [RXGate, RYGate, RZGate])
    def test_angles_compose(self, gate_cls):
        a, b = 0.4, 1.1
        assert np.allclose(
            gate_cls(a).matrix() @ gate_cls(b).matrix(), gate_cls(a + b).matrix()
        )

    def test_rx_pi_is_x_up_to_phase(self):
        assert matrices_equal(RXGate(np.pi).matrix(), XGate().matrix(), up_to_global_phase=True)

    def test_rz_pi_is_z_up_to_phase(self):
        assert matrices_equal(RZGate(np.pi).matrix(), ZGate().matrix(), up_to_global_phase=True)

    def test_phase_gate_diag(self):
        assert np.allclose(PhaseGate(np.pi / 2).matrix(), SGate().matrix())

    def test_inverse_negates_angle(self):
        gate = RYGate(0.7)
        assert np.allclose(gate.inverse().matrix() @ gate.matrix(), np.eye(2))


class TestU3:
    def test_special_cases(self):
        assert matrices_equal(U3Gate(np.pi, 0, np.pi).matrix(), XGate().matrix(), up_to_global_phase=True)
        assert matrices_equal(
            U3Gate(np.pi / 2, 0, np.pi).matrix(), HGate().matrix(), up_to_global_phase=True
        )

    def test_is_unitary_for_random_angles(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            theta, phi, lam = rng.uniform(-np.pi, np.pi, 3)
            assert is_unitary(U3Gate(theta, phi, lam).matrix())

    def test_inverse(self):
        gate = U3Gate(0.3, 0.5, 0.7)
        assert np.allclose(gate.inverse().matrix() @ gate.matrix(), np.eye(2), atol=1e-9)
