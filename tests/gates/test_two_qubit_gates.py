"""Tests for the two-qubit (and Toffoli) gate library."""

import numpy as np
import pytest

from repro.gates import (
    CCXGate,
    CPhaseGate,
    CXGate,
    CZGate,
    FSimGate,
    ISwapGate,
    NthRootISwapGate,
    RXXGate,
    RZZGate,
    SqrtISwapGate,
    SwapGate,
    SycamoreGate,
    ZXGate,
)
from repro.linalg.matrices import is_unitary, matrices_equal

ALL_TWO_QUBIT = [
    CXGate(),
    CZGate(),
    CPhaseGate(0.7),
    RZZGate(0.3),
    RXXGate(0.4),
    SwapGate(),
    ISwapGate(),
    SqrtISwapGate(),
    NthRootISwapGate(3),
    FSimGate(0.5, 0.2),
    SycamoreGate(),
    ZXGate(1.1),
]


class TestBasicProperties:
    @pytest.mark.parametrize("gate", ALL_TWO_QUBIT, ids=lambda g: g.name)
    def test_unitary(self, gate):
        assert is_unitary(gate.matrix())

    @pytest.mark.parametrize("gate", ALL_TWO_QUBIT, ids=lambda g: g.name)
    def test_inverse_really_inverts(self, gate):
        product = gate.inverse().matrix() @ gate.matrix()
        assert matrices_equal(product, np.eye(4), up_to_global_phase=True)

    def test_ccx_unitary_and_permutation(self):
        matrix = CCXGate().matrix()
        assert is_unitary(matrix)
        # Toffoli is a permutation matrix swapping |110> and |111>.
        assert matrix[6, 7] == 1 and matrix[7, 6] == 1 and matrix[5, 5] == 1


class TestISwapFamily:
    def test_sqrt_iswap_squares_to_iswap(self):
        sqrt = SqrtISwapGate().matrix()
        assert np.allclose(sqrt @ sqrt, ISwapGate().matrix())

    @pytest.mark.parametrize("root", [2, 3, 4, 5, 8])
    def test_nth_root_power_recovers_iswap(self, root):
        gate = NthRootISwapGate(root).matrix()
        product = np.eye(4)
        for _ in range(root):
            product = product @ gate
        assert np.allclose(product, ISwapGate().matrix(), atol=1e-9)

    def test_first_root_is_iswap(self):
        assert np.allclose(NthRootISwapGate(1).matrix(), ISwapGate().matrix())

    @pytest.mark.parametrize("root", [1, 2, 3, 4, 6])
    def test_duration_scales_inversely(self, root):
        assert NthRootISwapGate(root).duration() == pytest.approx(1.0 / root)

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            NthRootISwapGate(0)

    def test_equality_by_root(self):
        assert NthRootISwapGate(3) == NthRootISwapGate(3)
        assert NthRootISwapGate(3) != NthRootISwapGate(4)


class TestFSimFamily:
    def test_sycamore_is_fsim_pi2_pi6(self):
        assert np.allclose(SycamoreGate().matrix(), FSimGate(np.pi / 2, np.pi / 6).matrix())

    def test_fsim_minus_quarter_is_sqrt_iswap(self):
        # Paper Section 2.4.2: sqrt(iSWAP) is realised by theta=-pi/4, phi=0.
        assert np.allclose(FSimGate(-np.pi / 4, 0.0).matrix(), SqrtISwapGate().matrix())

    def test_fsim_zero_is_identity(self):
        assert np.allclose(FSimGate(0.0, 0.0).matrix(), np.eye(4))

    def test_sycamore_name(self):
        assert SycamoreGate().name == "syc"


class TestCrossResonance:
    def test_zx_pi_2_makes_cnot_with_cliffords(self):
        """Paper Eq. 5: CNOT = (S^dag (x) sqrt(X)^dag) ZX(pi/2) up to phase."""
        from repro.circuits import QuantumCircuit
        from repro.gates import SdgGate, SXGate
        from repro.simulator import circuit_unitary

        circuit = QuantumCircuit(2)
        circuit.append(ZXGate(np.pi / 2), (0, 1))
        circuit.append(SdgGate(), (0,))
        circuit.append(SXGate().inverse(), (1,))
        reference = QuantumCircuit(2)
        reference.cx(0, 1)
        assert matrices_equal(
            circuit_unitary(circuit), circuit_unitary(reference), up_to_global_phase=True
        )

    def test_zx_zero_is_identity(self):
        assert np.allclose(ZXGate(0.0).matrix(), np.eye(4))


class TestDiagonalGates:
    def test_cphase_pi_is_cz(self):
        assert np.allclose(CPhaseGate(np.pi).matrix(), CZGate().matrix())

    def test_rzz_symmetry(self):
        matrix = RZZGate(0.9).matrix()
        assert np.allclose(matrix, matrix.T)

    def test_cx_action_on_basis(self):
        matrix = CXGate().matrix()
        # |10> (control=1, target=0) -> |11> in the gate's big-endian basis.
        state = np.zeros(4)
        state[2] = 1.0
        assert np.argmax(np.abs(matrix @ state)) == 3
