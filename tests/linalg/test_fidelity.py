"""Tests for unitary fidelity measures."""

import numpy as np
import pytest

from repro.linalg.fidelity import (
    average_gate_fidelity,
    hilbert_schmidt_fidelity,
    process_fidelity,
    trace_distance_bound,
    unitary_infidelity,
)
from repro.linalg.random import random_unitary


class TestHilbertSchmidt:
    def test_identical_unitaries(self):
        unitary = random_unitary(4, 1)
        assert hilbert_schmidt_fidelity(unitary, unitary) == pytest.approx(1.0)

    def test_global_phase_insensitive(self):
        unitary = random_unitary(4, 2)
        assert hilbert_schmidt_fidelity(unitary, np.exp(1j * 0.5) * unitary) == pytest.approx(1.0)

    def test_orthogonal_paulis(self):
        pauli_x = np.array([[0, 1], [1, 0]], dtype=complex)
        pauli_z = np.diag([1, -1]).astype(complex)
        assert hilbert_schmidt_fidelity(pauli_x, pauli_z) == pytest.approx(0.0)

    def test_bounded_between_zero_and_one(self):
        for seed in range(10):
            value = hilbert_schmidt_fidelity(random_unitary(4, seed), random_unitary(4, seed + 50))
            assert 0.0 <= value <= 1.0 + 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hilbert_schmidt_fidelity(np.eye(2), np.eye(4))


class TestDerivedMeasures:
    def test_process_fidelity_is_square(self):
        a, b = random_unitary(4, 3), random_unitary(4, 4)
        assert process_fidelity(a, b) == pytest.approx(hilbert_schmidt_fidelity(a, b) ** 2)

    def test_average_gate_fidelity_identity(self):
        unitary = random_unitary(2, 5)
        assert average_gate_fidelity(unitary, unitary) == pytest.approx(1.0)

    def test_average_gate_fidelity_bounds(self):
        value = average_gate_fidelity(np.eye(2), np.array([[0, 1], [1, 0]]))
        assert 0.0 <= value < 1.0

    def test_infidelity_complements_fidelity(self):
        a, b = random_unitary(4, 6), random_unitary(4, 7)
        assert unitary_infidelity(a, b) == pytest.approx(1.0 - hilbert_schmidt_fidelity(a, b))

    def test_trace_distance_zero_for_equal(self):
        unitary = random_unitary(4, 8)
        assert trace_distance_bound(unitary, np.exp(1j * 1.3) * unitary) == pytest.approx(0.0, abs=1e-9)

    def test_trace_distance_positive_for_different(self):
        assert trace_distance_bound(np.eye(2), np.array([[0, 1], [1, 0]])) > 0.5
