"""Tests for the Cartan (KAK) decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import CXGate, ISwapGate, SqrtISwapGate, SwapGate, SycamoreGate
from repro.linalg.kak import KAKDecomposition, kak_decomposition
from repro.linalg.matrices import is_unitary, kron
from repro.linalg.random import random_su2, random_unitary
from repro.linalg.weyl import weyl_coordinates


class TestReconstruction:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_unitaries(self, seed):
        unitary = random_unitary(4, seed)
        decomposition = kak_decomposition(unitary)
        assert np.allclose(decomposition.unitary(), unitary, atol=1e-6)

    @pytest.mark.parametrize(
        "gate",
        [CXGate(), SwapGate(), ISwapGate(), SqrtISwapGate(), SycamoreGate()],
        ids=lambda g: g.name,
    )
    def test_named_gates(self, gate):
        unitary = gate.matrix()
        decomposition = kak_decomposition(unitary)
        assert np.allclose(decomposition.unitary(), unitary, atol=1e-6)

    def test_identity(self):
        decomposition = kak_decomposition(np.eye(4))
        assert np.allclose(decomposition.unitary(), np.eye(4), atol=1e-7)
        assert decomposition.canonical.is_local()

    def test_local_gate(self):
        local = kron(random_su2(5), random_su2(6))
        decomposition = kak_decomposition(local)
        assert np.allclose(decomposition.unitary(), local, atol=1e-6)
        assert decomposition.canonical.is_local()

    def test_gate_with_global_phase(self):
        unitary = np.exp(1j * 0.9) * random_unitary(4, 3)
        decomposition = kak_decomposition(unitary)
        assert np.allclose(decomposition.unitary(), unitary, atol=1e-6)


class TestStructure:
    def test_local_factors_are_unitary(self):
        decomposition = kak_decomposition(random_unitary(4, 8))
        for factor in decomposition.local_factors():
            assert factor.shape == (2, 2)
            assert is_unitary(factor)

    def test_canonical_matches_weyl_coordinates(self):
        for seed in range(10):
            unitary = random_unitary(4, 100 + seed)
            decomposition = kak_decomposition(unitary)
            assert decomposition.canonical.equals(weyl_coordinates(unitary), atol=1e-5)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            kak_decomposition(np.ones((4, 4)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            kak_decomposition(np.eye(2))

    def test_result_type(self):
        assert isinstance(kak_decomposition(np.eye(4)), KAKDecomposition)


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reconstruction_property(self, seed):
        """KAK always reconstructs the input for Haar-random unitaries."""
        unitary = random_unitary(4, seed)
        decomposition = kak_decomposition(unitary)
        assert np.allclose(decomposition.unitary(), unitary, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_canonical_invariance_under_local_dressing(self, seed):
        rng = np.random.default_rng(seed)
        unitary = random_unitary(4, rng)
        dressed = kron(random_su2(rng), random_su2(rng)) @ unitary
        a = kak_decomposition(unitary).canonical
        b = kak_decomposition(dressed).canonical
        assert a.equals(b, atol=1e-5)
