"""Tests for repro.linalg.matrices."""

import numpy as np
import pytest

from repro.linalg.matrices import (
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    closest_unitary,
    dagger,
    decompose_kron,
    is_hermitian,
    is_unitary,
    kron,
    matrices_equal,
    remove_global_phase,
    su_normalize,
)
from repro.linalg.random import random_su2, random_unitary


class TestPredicates:
    def test_paulis_are_unitary_and_hermitian(self):
        for pauli in (PAULI_X, PAULI_Y, PAULI_Z):
            assert is_unitary(pauli)
            assert is_hermitian(pauli)

    def test_non_square_is_not_unitary(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_scaled_identity_is_not_unitary(self):
        assert not is_unitary(2.0 * np.eye(3))

    def test_random_unitaries_pass(self):
        for seed in range(5):
            assert is_unitary(random_unitary(4, seed))

    def test_hermitian_rejects_asymmetric(self):
        assert not is_hermitian(np.array([[0, 1], [0, 0]]))


class TestMatricesEqual:
    def test_exact_equality(self):
        unitary = random_unitary(4, 3)
        assert matrices_equal(unitary, unitary.copy())

    def test_global_phase_ignored_when_requested(self):
        unitary = random_unitary(2, 1)
        phased = np.exp(1j * 0.37) * unitary
        assert not matrices_equal(unitary, phased)
        assert matrices_equal(unitary, phased, up_to_global_phase=True)

    def test_different_shapes_not_equal(self):
        assert not matrices_equal(np.eye(2), np.eye(4))

    def test_genuinely_different_matrices(self):
        assert not matrices_equal(
            PAULI_X, PAULI_Z, up_to_global_phase=True
        )


class TestHelpers:
    def test_dagger_involution(self):
        unitary = random_unitary(3, 5)
        assert np.allclose(dagger(dagger(unitary)), unitary)

    def test_kron_matches_numpy(self):
        a, b = random_unitary(2, 1), random_unitary(2, 2)
        assert np.allclose(kron(a, b), np.kron(a, b))

    def test_kron_three_factors(self):
        a, b, c = (random_unitary(2, s) for s in (1, 2, 3))
        assert np.allclose(kron(a, b, c), np.kron(np.kron(a, b), c))

    def test_kron_requires_inputs(self):
        with pytest.raises(ValueError):
            kron()

    def test_remove_global_phase_pivot_positive(self):
        unitary = np.exp(1j * 1.1) * np.eye(2)
        cleaned = remove_global_phase(unitary)
        index = np.unravel_index(np.argmax(np.abs(cleaned)), cleaned.shape)
        assert abs(np.imag(cleaned[index])) < 1e-12
        assert np.real(cleaned[index]) > 0

    def test_closest_unitary_projects(self):
        noisy = random_unitary(4, 7) + 0.01 * np.ones((4, 4))
        projected = closest_unitary(noisy)
        assert is_unitary(projected)

    def test_su_normalize_det_one(self):
        unitary = random_unitary(4, 9)
        special, phase = su_normalize(unitary)
        assert abs(np.linalg.det(special) - 1.0) < 1e-9
        assert np.allclose(np.exp(1j * phase) * special, unitary)


class TestDecomposeKron:
    def test_recovers_tensor_product(self):
        a = random_su2(11)
        b = random_su2(12)
        factor_a, factor_b, residue = decompose_kron(np.kron(a, b))
        assert np.allclose(residue * np.kron(factor_a, factor_b), np.kron(a, b))

    def test_factors_have_unit_determinant(self):
        a, b = random_su2(1), random_su2(2)
        factor_a, factor_b, _ = decompose_kron(np.kron(a, b))
        assert abs(np.linalg.det(factor_a) - 1.0) < 1e-8
        assert abs(np.linalg.det(factor_b) - 1.0) < 1e-8

    def test_rejects_entangling_matrix(self):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        with pytest.raises(ValueError):
            decompose_kron(cnot)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            decompose_kron(np.eye(2))
