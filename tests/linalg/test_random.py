"""Tests for Haar-random sampling."""

import numpy as np
import pytest

from repro.linalg.matrices import is_hermitian, is_unitary
from repro.linalg.random import (
    random_hermitian,
    random_statevector,
    random_su2,
    random_unitary,
)


class TestRandomUnitary:
    def test_is_unitary(self):
        for dim in (2, 3, 4, 8):
            assert is_unitary(random_unitary(dim, seed=dim))

    def test_seed_reproducibility(self):
        assert np.allclose(random_unitary(4, 42), random_unitary(4, 42))

    def test_different_seeds_differ(self):
        assert not np.allclose(random_unitary(4, 1), random_unitary(4, 2))

    def test_generator_is_consumed(self):
        rng = np.random.default_rng(0)
        first = random_unitary(2, rng)
        second = random_unitary(2, rng)
        assert not np.allclose(first, second)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            random_unitary(0)

    def test_eigenphase_distribution_covers_circle(self):
        # Haar-distributed eigenphases should spread over (-pi, pi].
        phases = []
        for seed in range(40):
            phases.extend(np.angle(np.linalg.eigvals(random_unitary(4, seed))))
        phases = np.array(phases)
        assert phases.min() < -2.0 and phases.max() > 2.0


class TestRandomSU2:
    def test_determinant_one(self):
        for seed in range(5):
            assert abs(np.linalg.det(random_su2(seed)) - 1.0) < 1e-9

    def test_is_unitary(self):
        assert is_unitary(random_su2(3))


class TestRandomStatevector:
    def test_normalised(self):
        state = random_statevector(8, seed=1)
        assert abs(np.linalg.norm(state) - 1.0) < 1e-12

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            random_statevector(0)


class TestRandomHermitian:
    def test_is_hermitian(self):
        assert is_hermitian(random_hermitian(5, seed=3))

    def test_scale(self):
        small = random_hermitian(4, seed=1, scale=1e-3)
        assert np.max(np.abs(small)) < 0.1
