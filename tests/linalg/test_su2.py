"""Tests for the single-qubit ZYZ Euler decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.random import random_unitary
from repro.linalg.su2 import (
    OneQubitEulerDecomposition,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    zyz_decomposition,
)


class TestRotationMatrices:
    def test_rz_diagonal(self):
        matrix = rz_matrix(0.7)
        assert abs(matrix[0, 1]) == 0 and abs(matrix[1, 0]) == 0

    def test_rotations_are_unitary(self):
        for theta in (-2.0, 0.0, 0.3, np.pi, 5.0):
            for builder in (rx_matrix, ry_matrix, rz_matrix):
                matrix = builder(theta)
                assert np.allclose(matrix @ matrix.conj().T, np.eye(2))

    def test_full_rotation_is_minus_identity(self):
        assert np.allclose(ry_matrix(2 * np.pi), -np.eye(2))

    def test_rx_pi_is_pauli_x_up_to_phase(self):
        assert np.allclose(rx_matrix(np.pi), -1j * np.array([[0, 1], [1, 0]]))


class TestZYZDecomposition:
    @pytest.mark.parametrize("seed", range(20))
    def test_reconstruction_random(self, seed):
        unitary = random_unitary(2, seed)
        decomposition = zyz_decomposition(unitary)
        assert np.allclose(decomposition.matrix(), unitary, atol=1e-7)

    def test_identity(self):
        decomposition = zyz_decomposition(np.eye(2))
        assert np.allclose(decomposition.matrix(), np.eye(2), atol=1e-9)

    def test_diagonal_gate(self):
        gate = np.diag([1.0, np.exp(1j * 0.3)])
        decomposition = zyz_decomposition(gate)
        assert np.allclose(decomposition.matrix(), gate, atol=1e-9)

    def test_antidiagonal_gate(self):
        gate = np.array([[0, 1], [1, 0]], dtype=complex)
        decomposition = zyz_decomposition(gate)
        assert np.allclose(decomposition.matrix(), gate, atol=1e-9)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            zyz_decomposition(np.array([[1, 0], [0, 2.0]]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            zyz_decomposition(np.eye(4))

    def test_angles_accessor(self):
        decomposition = OneQubitEulerDecomposition(0.1, 0.2, 0.3, 0.4)
        assert decomposition.angles() == (0.2, 0.3, 0.4)

    @settings(max_examples=25, deadline=None)
    @given(
        beta=st.floats(-np.pi, np.pi),
        gamma=st.floats(0.0, np.pi),
        delta=st.floats(-np.pi, np.pi),
        alpha=st.floats(-np.pi, np.pi),
    )
    def test_round_trip_property(self, alpha, beta, gamma, delta):
        """Any Euler-angle unitary decomposes back to itself."""
        unitary = OneQubitEulerDecomposition(alpha, beta, gamma, delta).matrix()
        decomposition = zyz_decomposition(unitary)
        assert np.allclose(decomposition.matrix(), unitary, atol=1e-6)
