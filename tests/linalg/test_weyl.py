"""Tests for Weyl-chamber coordinates and canonicalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import (
    CXGate,
    CZGate,
    CPhaseGate,
    FSimGate,
    ISwapGate,
    NthRootISwapGate,
    RZZGate,
    SqrtISwapGate,
    SwapGate,
    SycamoreGate,
)
from repro.linalg.matrices import kron
from repro.linalg.random import random_su2, random_unitary
from repro.linalg.weyl import (
    CNOT_CLASS,
    ISWAP_CLASS,
    SQRT_ISWAP_CLASS,
    SWAP_CLASS,
    WeylCoordinates,
    canonical_gate,
    canonicalize_coordinates,
    in_weyl_chamber,
    nth_root_iswap_class,
    weyl_coordinates,
)

PI_4 = np.pi / 4.0


class TestNamedClasses:
    def test_cnot(self):
        assert weyl_coordinates(CXGate().matrix()).equals(CNOT_CLASS)

    def test_cz_equivalent_to_cnot(self):
        assert weyl_coordinates(CZGate().matrix()).equals(CNOT_CLASS)

    def test_iswap(self):
        assert weyl_coordinates(ISwapGate().matrix()).equals(ISWAP_CLASS)

    def test_swap(self):
        assert weyl_coordinates(SwapGate().matrix()).equals(SWAP_CLASS)

    def test_sqrt_iswap(self):
        assert weyl_coordinates(SqrtISwapGate().matrix()).equals(SQRT_ISWAP_CLASS)

    @pytest.mark.parametrize("root", [1, 2, 3, 4, 5, 7])
    def test_nth_root_iswap(self, root):
        coords = weyl_coordinates(NthRootISwapGate(root).matrix())
        assert coords.equals(nth_root_iswap_class(root), atol=1e-6)

    def test_sycamore_is_nonlocal_and_not_cnot_class(self):
        coords = weyl_coordinates(SycamoreGate().matrix())
        assert not coords.is_local()
        assert not coords.equals(CNOT_CLASS)

    def test_cphase_quarter_angle(self):
        # CPhase(lambda) is locally equivalent to CAN(|lambda|/4, 0, 0) for
        # small lambda (a lambda/4 ZZ rotation plus local Rz gates).
        coords = weyl_coordinates(CPhaseGate(0.5).matrix())
        assert coords.equals(WeylCoordinates(0.125, 0.0, 0.0), atol=1e-6)

    def test_rzz_is_controlled_phase_like(self):
        coords = weyl_coordinates(RZZGate(0.8).matrix())
        assert coords.equals(WeylCoordinates(0.4, 0.0, 0.0), atol=1e-6)

    def test_identity_is_local(self):
        assert weyl_coordinates(np.eye(4)).is_local()

    def test_local_gate_is_local(self):
        local = kron(random_su2(1), random_su2(2))
        assert weyl_coordinates(local).is_local()


class TestInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_local_invariance(self, seed):
        """Dressing with 1Q gates must not change the canonical class."""
        rng = np.random.default_rng(seed)
        unitary = random_unitary(4, rng)
        dressed = (
            kron(random_su2(rng), random_su2(rng))
            @ unitary
            @ kron(random_su2(rng), random_su2(rng))
        )
        assert weyl_coordinates(unitary).equals(weyl_coordinates(dressed), atol=1e-6)

    def test_global_phase_invariance(self):
        unitary = CXGate().matrix()
        for phase in (0.3, np.pi / 2, 2.5):
            assert weyl_coordinates(np.exp(1j * phase) * unitary).equals(CNOT_CLASS)

    def test_canonical_gate_round_trip(self):
        coords = WeylCoordinates(0.6, 0.3, 0.1)
        recovered = weyl_coordinates(canonical_gate(*coords.as_tuple()))
        assert recovered.equals(coords, atol=1e-6)


class TestChamber:
    def test_in_chamber_accepts_named_points(self):
        for coords in (CNOT_CLASS, ISWAP_CLASS, SWAP_CLASS, SQRT_ISWAP_CLASS):
            assert in_weyl_chamber(coords.as_tuple())

    def test_rejects_outside(self):
        assert not in_weyl_chamber((1.0, 0.0, 0.0))
        assert not in_weyl_chamber((0.2, 0.5, 0.0))

    def test_canonicalize_is_idempotent(self):
        coords = canonicalize_coordinates(0.7, -0.2, 0.4)
        again = canonicalize_coordinates(*coords.as_tuple())
        assert coords.equals(again, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        x=st.floats(-3.0, 3.0),
        y=st.floats(-3.0, 3.0),
        z=st.floats(-3.0, 3.0),
    )
    def test_canonicalization_lands_in_chamber(self, x, y, z):
        coords = canonicalize_coordinates(x, y, z)
        assert in_weyl_chamber(coords.as_tuple(), atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.floats(0.0, PI_4),
        y=st.floats(0.0, PI_4),
        z=st.floats(0.0, PI_4),
    )
    def test_canonical_form_is_class_invariant(self, x, y, z):
        """The canonical gate built from canonical coords maps back to them."""
        coords = canonicalize_coordinates(x, y, z)
        gate = canonical_gate(*coords.as_tuple())
        assert weyl_coordinates(gate).equals(coords, atol=1e-5)


class TestPerfectEntangler:
    def test_cnot_is_perfect_entangler(self):
        assert CNOT_CLASS.is_perfect_entangler()

    def test_sqrt_iswap_is_perfect_entangler(self):
        assert SQRT_ISWAP_CLASS.is_perfect_entangler()

    def test_identity_is_not(self):
        assert not WeylCoordinates(0.0, 0.0, 0.0).is_perfect_entangler()

    def test_quarter_iswap_is_not(self):
        assert not nth_root_iswap_class(4).is_perfect_entangler()

    def test_swap_is_not_perfect_entangler(self):
        assert not SWAP_CLASS.is_perfect_entangler()


class TestFSimFamily:
    def test_fsim_pure_exchange_matches_iswap_fraction(self):
        # fSim(theta, 0) is a partial iSWAP with swap angle theta.
        coords = weyl_coordinates(FSimGate(np.pi / 4.0, 0.0).matrix())
        assert coords.equals(SQRT_ISWAP_CLASS, atol=1e-6)

    def test_fsim_pure_phase_matches_cphase(self):
        # fSim(0, phi) is a controlled phase of angle -phi, i.e. a phi/4 ZZ
        # interaction up to local gates.
        coords = weyl_coordinates(FSimGate(0.0, 1.0).matrix())
        assert coords.equals(WeylCoordinates(0.25, 0.0, 0.0), atol=1e-6)

    def test_syc_has_nonzero_third_coordinate(self):
        coords = weyl_coordinates(SycamoreGate().matrix())
        assert abs(coords.z) > 1e-3
