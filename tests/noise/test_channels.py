"""Unit and property tests for Kraus channels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.channels import (
    QuantumChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)


def random_density_matrix(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = raw @ raw.conj().T
    return rho / np.trace(rho)


class TestConstruction:
    def test_requires_at_least_one_kraus_operator(self):
        with pytest.raises(ValueError):
            QuantumChannel([])

    def test_rejects_non_square_operators(self):
        with pytest.raises(ValueError):
            QuantumChannel([np.ones((2, 3))])

    def test_rejects_incomplete_kraus_set(self):
        with pytest.raises(ValueError):
            QuantumChannel([0.5 * np.eye(2)])

    def test_rejects_non_power_of_two_dimension(self):
        with pytest.raises(ValueError):
            QuantumChannel([np.eye(3)])

    def test_identity_channel_is_unitary(self):
        assert identity_channel().is_unitary()

    def test_depolarizing_channel_is_not_unitary(self):
        assert not depolarizing_channel(0.1).is_unitary()

    def test_depolarizing_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5)
        with pytest.raises(ValueError):
            depolarizing_channel(-0.1)

    def test_pauli_channel_rejects_excess_probability(self):
        with pytest.raises(ValueError):
            pauli_channel(0.5, 0.5, 0.5)

    def test_pauli_channel_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            pauli_channel(-0.1, 0.0, 0.0)

    def test_amplitude_damping_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            amplitude_damping_channel(2.0)

    def test_phase_damping_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            phase_damping_channel(-0.5)

    def test_thermal_relaxation_rejects_unphysical_t2(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(1.0, t1=1.0, t2=3.0)

    def test_thermal_relaxation_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(-1.0, t1=1.0, t2=1.0)


class TestAction:
    def test_identity_preserves_state(self):
        rho = random_density_matrix(1, seed=3)
        assert np.allclose(identity_channel().apply(rho), rho)

    def test_full_depolarizing_yields_maximally_mixed(self):
        rho = random_density_matrix(1, seed=5)
        out = depolarizing_channel(1.0).apply(rho)
        # p=1 distributes weight over X, Y, Z only; the resulting state for
        # any input is 2/3 I - 1/3 rho, which for pure states has purity 5/9.
        assert abs(np.trace(out) - 1.0) < 1e-9

    def test_bit_flip_flips_ground_state(self):
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = bit_flip_channel(1.0).apply(rho)
        assert np.allclose(out, np.diag([0.0, 1.0]))

    def test_phase_flip_preserves_populations(self):
        rho = random_density_matrix(1, seed=7)
        out = phase_flip_channel(0.3).apply(rho)
        assert np.allclose(np.diag(out), np.diag(rho))

    def test_amplitude_damping_moves_excited_population_down(self):
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = amplitude_damping_channel(0.25).apply(rho)
        assert out[0, 0].real == pytest.approx(0.25)
        assert out[1, 1].real == pytest.approx(0.75)

    def test_amplitude_damping_full_decay_reaches_ground(self):
        rho = random_density_matrix(1, seed=11)
        out = amplitude_damping_channel(1.0).apply(rho)
        assert out[0, 0].real == pytest.approx(1.0)

    def test_phase_damping_shrinks_coherences(self):
        rho = 0.5 * np.array([[1, 1], [1, 1]], dtype=complex)
        out = phase_damping_channel(0.5).apply(rho)
        assert abs(out[0, 1]) < abs(rho[0, 1])
        assert np.allclose(np.diag(out), np.diag(rho))

    def test_apply_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            depolarizing_channel(0.1).apply(np.eye(4) / 4.0)

    def test_two_qubit_depolarizing_dimension(self):
        channel = depolarizing_channel(0.05, num_qubits=2)
        assert channel.num_qubits == 2
        assert channel.dim == 4
        rho = random_density_matrix(2, seed=13)
        out = channel.apply(rho)
        assert abs(np.trace(out) - 1.0) < 1e-9


class TestAlgebra:
    def test_compose_matches_sequential_application(self):
        rho = random_density_matrix(1, seed=17)
        first = amplitude_damping_channel(0.2)
        second = phase_damping_channel(0.3)
        combined = first.compose(second)
        assert np.allclose(combined.apply(rho), second.apply(first.apply(rho)))

    def test_compose_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            depolarizing_channel(0.1, num_qubits=1).compose(
                depolarizing_channel(0.1, num_qubits=2)
            )

    def test_tensor_acts_independently(self):
        rho_a = random_density_matrix(1, seed=19)
        rho_b = random_density_matrix(1, seed=23)
        joint = np.kron(rho_a, rho_b)
        channel_a = amplitude_damping_channel(0.4)
        channel_b = identity_channel()
        out = channel_a.tensor(channel_b).apply(joint)
        expected = np.kron(channel_a.apply(rho_a), rho_b)
        assert np.allclose(out, expected)


class TestFidelityMeasures:
    def test_identity_has_unit_fidelity(self):
        assert identity_channel().average_gate_fidelity() == pytest.approx(1.0)
        assert identity_channel().process_fidelity() == pytest.approx(1.0)

    def test_depolarizing_average_fidelity_formula(self):
        # For a single-qubit depolarising channel with our convention,
        # F_avg = 1 - 2p/3.
        p = 0.09
        fidelity = depolarizing_channel(p).average_gate_fidelity()
        assert fidelity == pytest.approx(1.0 - 2.0 * p / 3.0, abs=1e-9)

    def test_process_fidelity_against_target_unitary(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        channel = QuantumChannel([x])
        assert channel.process_fidelity(target_unitary=x) == pytest.approx(1.0)
        assert channel.process_fidelity() == pytest.approx(0.0, abs=1e-12)

    def test_choi_matrix_trace_equals_dimension(self):
        channel = depolarizing_channel(0.2)
        choi = channel.choi_matrix()
        assert np.trace(choi).real == pytest.approx(channel.dim)

    def test_choi_matrix_is_positive_semidefinite(self):
        channel = amplitude_damping_channel(0.3)
        eigenvalues = np.linalg.eigvalsh(channel.choi_matrix())
        assert np.all(eigenvalues > -1e-9)


class TestChannelProperties:
    @given(
        rate=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_depolarizing_preserves_trace_and_positivity(self, rate, seed):
        rho = random_density_matrix(1, seed=seed)
        out = depolarizing_channel(rate).apply(rho)
        assert abs(np.trace(out) - 1.0) < 1e-8
        assert np.all(np.linalg.eigvalsh(out) > -1e-8)

    @given(
        gamma=st.floats(min_value=0.0, max_value=1.0),
        lam=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_composed_damping_remains_cptp(self, gamma, lam, seed):
        rho = random_density_matrix(1, seed=seed)
        channel = amplitude_damping_channel(gamma).compose(phase_damping_channel(lam))
        out = channel.apply(rho)
        assert abs(np.trace(out) - 1.0) < 1e-8
        assert np.all(np.linalg.eigvalsh(out) > -1e-8)

    @given(
        duration=st.floats(min_value=0.0, max_value=50.0),
        t1=st.floats(min_value=1.0, max_value=200.0),
        ratio=st.floats(min_value=0.1, max_value=2.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_thermal_relaxation_is_physical(self, duration, t1, ratio, seed):
        t2 = t1 * ratio
        rho = random_density_matrix(1, seed=seed)
        out = thermal_relaxation_channel(duration, t1, t2).apply(rho)
        assert abs(np.trace(out) - 1.0) < 1e-8
        assert np.all(np.linalg.eigvalsh(out) > -1e-8)

    def test_longer_relaxation_decays_more(self):
        plus = 0.5 * np.array([[1, 1], [1, 1]], dtype=complex)
        short = thermal_relaxation_channel(1.0, t1=10.0, t2=10.0).apply(plus)
        long = thermal_relaxation_channel(5.0, t1=10.0, t2=10.0).apply(plus)
        assert abs(long[0, 1]) < abs(short[0, 1])
