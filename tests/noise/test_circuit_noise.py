"""Tests for the circuit-level noise model and output-quality metrics."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import CXGate, HGate
from repro.noise.circuit_noise import (
    CircuitNoiseModel,
    circuit_output_fidelity,
    heavy_output_probability,
)
from repro.workloads import quantum_volume_circuit


def ghz(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name="ghz")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


class TestModelConstruction:
    def test_rejects_bad_error_rates(self):
        with pytest.raises(ValueError):
            CircuitNoiseModel(two_qubit_error=1.5)
        with pytest.raises(ValueError):
            CircuitNoiseModel(one_qubit_error=-0.1)

    def test_rejects_unphysical_t2(self):
        with pytest.raises(ValueError):
            CircuitNoiseModel(t1=10.0, t2=30.0)

    def test_rejects_non_positive_times(self):
        with pytest.raises(ValueError):
            CircuitNoiseModel(t1=0.0)

    def test_from_gate_fidelity_maps_to_depolarizing_rate(self):
        model = CircuitNoiseModel.from_gate_fidelity(0.99)
        assert model.two_qubit_error == pytest.approx(0.0125)

    def test_from_gate_fidelity_rejects_zero(self):
        with pytest.raises(ValueError):
            CircuitNoiseModel.from_gate_fidelity(0.0)

    def test_ideal_model_has_no_channels(self):
        model = CircuitNoiseModel.ideal()
        cx = Instruction(CXGate(), (0, 1))
        h = Instruction(HGate(), (0,))
        assert model.channel_for(cx) is None
        assert model.channel_for(h) is None
        assert model.idle_channel_for(ghz(2), 0) is None


class TestChannelsForInstructions:
    def test_two_qubit_gate_gets_two_qubit_channel(self):
        model = CircuitNoiseModel(two_qubit_error=0.02)
        channel = model.channel_for(Instruction(CXGate(), (0, 1)))
        assert channel is not None
        assert channel.num_qubits == 2

    def test_one_qubit_gate_channel_only_when_enabled(self):
        noiseless_1q = CircuitNoiseModel(one_qubit_error=0.0)
        assert noiseless_1q.channel_for(Instruction(HGate(), (0,))) is None
        noisy_1q = CircuitNoiseModel(one_qubit_error=0.01)
        channel = noisy_1q.channel_for(Instruction(HGate(), (0,)))
        assert channel is not None and channel.num_qubits == 1

    def test_idle_channel_scales_with_duration(self):
        model = CircuitNoiseModel(two_qubit_error=0.0, t1=20.0, t2=20.0)
        short = ghz(2)
        long = ghz(2)
        for _ in range(5):
            long.cx(0, 1)
        plus = 0.5 * np.array([[1, 1], [1, 1]], dtype=complex)
        short_out = model.idle_channel_for(short, 0).apply(plus)
        long_out = model.idle_channel_for(long, 0).apply(plus)
        assert abs(long_out[0, 1]) < abs(short_out[0, 1])

    def test_idle_channel_none_for_empty_circuit(self):
        model = CircuitNoiseModel()
        assert model.idle_channel_for(QuantumCircuit(2), 0) is None

    def test_channel_cache_is_reused_per_instruction(self):
        model = CircuitNoiseModel(two_qubit_error=0.02)
        first = model.channel_for(Instruction(CXGate(), (0, 1)))
        second = model.channel_for(Instruction(CXGate(), (1, 2)))
        assert first is second

    def test_mutating_the_model_invalidates_cached_channels(self):
        # The dataclass is mutable; reassigned parameters must not be
        # served channels built from the old values.
        model = CircuitNoiseModel(two_qubit_error=0.02, t1=20.0, t2=20.0)
        instruction = Instruction(CXGate(), (0, 1))
        before = model.channel_for(instruction)
        model.two_qubit_error = 0.2
        after = model.channel_for(instruction)
        assert after is not before
        assert after.process_fidelity() < before.process_fidelity()
        circuit = ghz(2)
        idle_before = model.idle_channel_for(circuit, 0)
        model.t1 = model.t2 = 5.0
        idle_after = model.idle_channel_for(circuit, 0)
        assert idle_after is not idle_before


class TestOutputMetrics:
    def test_ideal_fidelity_is_one(self):
        fidelity = circuit_output_fidelity(ghz(3), CircuitNoiseModel.ideal())
        assert fidelity == pytest.approx(1.0)

    def test_noisy_fidelity_below_one_and_monotone_in_error(self):
        mild = circuit_output_fidelity(ghz(3), CircuitNoiseModel(two_qubit_error=0.01))
        harsh = circuit_output_fidelity(ghz(3), CircuitNoiseModel(two_qubit_error=0.10))
        assert harsh < mild < 1.0

    def test_estimated_success_probability_monotone_in_gate_count(self):
        model = CircuitNoiseModel(two_qubit_error=0.01, t1=200.0, t2=200.0)
        assert model.estimated_success_probability(ghz(3)) > model.estimated_success_probability(
            ghz(6)
        )

    def test_estimated_success_probability_in_unit_interval(self):
        model = CircuitNoiseModel(two_qubit_error=0.02, t1=50.0, t2=40.0)
        value = model.estimated_success_probability(ghz(5))
        assert 0.0 < value < 1.0

    def test_heavy_output_probability_ideal_qv(self):
        circuit = quantum_volume_circuit(4, seed=7)
        score = heavy_output_probability(circuit)
        # Ideal QV circuits concentrate well above the random-guess value 0.5.
        assert score > 0.7

    def test_heavy_output_probability_degrades_with_noise(self):
        circuit = quantum_volume_circuit(4, seed=7)
        ideal = heavy_output_probability(circuit)
        noisy = heavy_output_probability(
            circuit, CircuitNoiseModel(two_qubit_error=0.08, t1=30.0, t2=30.0)
        )
        assert noisy < ideal

    def test_fidelity_tracks_the_count_surrogate_ordering(self):
        """The paper's count surrogate and the simulated fidelity must agree on ordering."""
        model = CircuitNoiseModel(two_qubit_error=0.03, t1=60.0, t2=60.0)
        few_gates = ghz(4)
        many_gates = ghz(4)
        for _ in range(4):
            many_gates.cx(2, 3)
            many_gates.cx(1, 2)
        assert few_gates.two_qubit_gate_count() < many_gates.two_qubit_gate_count()
        assert circuit_output_fidelity(few_gates, model) > circuit_output_fidelity(
            many_gates, model
        )
