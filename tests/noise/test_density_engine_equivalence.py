"""Equivalence suite: vectorized density engine vs legacy full expansion.

The local-contraction engine (``engine="local"``) must reproduce the
legacy full-register embedding (``engine="expand"``) to float tolerance on
randomized circuits and channel insertions; these tests pin that contract
at 1e-10 so any convention slip in the axis gymnastics fails loudly.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import UnitaryGate
from repro.linalg.random import random_unitary
from repro.noise.channels import (
    amplitude_damping_channel,
    depolarizing_channel,
    thermal_relaxation_channel,
)
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.density_matrix import (
    DensityMatrix,
    DensityMatrixSimulator,
    _evolve_channel_expand,
    _evolve_unitary_expand,
)

TOLERANCE = 1e-10


def random_circuit(num_qubits: int, depth: int, rng: np.random.Generator) -> QuantumCircuit:
    """Random mix of parametrised 1Q gates, CX/iSWAP and random SU(4) blocks."""
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        kind = int(rng.integers(5))
        if kind == 0:
            circuit.rx(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(num_qubits)))
        elif kind == 1:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(num_qubits)))
        elif kind == 2:
            circuit.h(int(rng.integers(num_qubits)))
        elif kind == 3 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        elif num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(
                UnitaryGate(random_unitary(4, seed=int(rng.integers(10_000)))),
                (int(a), int(b)),
            )
    return circuit


def random_mixed_state(num_qubits: int, rng: np.random.Generator) -> DensityMatrix:
    """A full-rank random density matrix (Wishart construction)."""
    dim = 2 ** num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    matrix = raw @ raw.conj().T
    return DensityMatrix(matrix / np.trace(matrix))


class TestRandomizedEngineEquivalence:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6])
    def test_noisy_run_matches_legacy_engine(self, num_qubits):
        rng = np.random.default_rng(17 + num_qubits)
        circuit = random_circuit(num_qubits, depth=10, rng=rng)
        model = CircuitNoiseModel(
            one_qubit_error=0.01, two_qubit_error=0.04, t1=40.0, t2=35.0
        )
        fast = DensityMatrixSimulator().run(circuit, noise_model=model)
        slow = DensityMatrixSimulator(engine="expand").run(circuit, noise_model=model)
        assert np.max(np.abs(fast.matrix - slow.matrix)) < TOLERANCE

    @pytest.mark.parametrize("num_qubits", [3, 5])
    def test_two_qubit_error_only_noise_matches_legacy_engine(self, num_qubits):
        # With no 1Q error, single-qubit runs are fused even while a noise
        # model is active — this pins the flush-before-channel ordering.
        rng = np.random.default_rng(61 + num_qubits)
        circuit = random_circuit(num_qubits, depth=12, rng=rng)
        model = CircuitNoiseModel(
            one_qubit_error=0.0, two_qubit_error=0.05, t1=50.0, t2=45.0
        )
        fast = DensityMatrixSimulator().run(circuit, noise_model=model)
        slow = DensityMatrixSimulator(engine="expand").run(circuit, noise_model=model)
        assert np.max(np.abs(fast.matrix - slow.matrix)) < TOLERANCE

    def test_three_qubit_gate_and_channel_match_legacy_engine(self):
        # Arity >= 3 exercises the widest superoperator contraction (a
        # 64x64 matrix over six tensor axes) and the k-qubit depolarising
        # channel CircuitNoiseModel attaches to multi-qubit instructions.
        circuit = QuantumCircuit(5)
        circuit.h(0)
        circuit.append(UnitaryGate(random_unitary(8, seed=42)), (3, 0, 2))
        circuit.cx(1, 4)
        circuit.append(UnitaryGate(random_unitary(8, seed=43)), (4, 2, 1))
        model = CircuitNoiseModel(
            one_qubit_error=0.01, two_qubit_error=0.04, t1=40.0, t2=35.0
        )
        fast = DensityMatrixSimulator().run(circuit, noise_model=model)
        slow = DensityMatrixSimulator(engine="expand").run(circuit, noise_model=model)
        assert np.max(np.abs(fast.matrix - slow.matrix)) < TOLERANCE

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_ideal_run_matches_legacy_engine(self, num_qubits):
        rng = np.random.default_rng(113 + num_qubits)
        circuit = random_circuit(num_qubits, depth=14, rng=rng)
        fast = DensityMatrixSimulator().run(circuit)
        slow = DensityMatrixSimulator(engine="expand").run(circuit)
        assert np.max(np.abs(fast.matrix - slow.matrix)) < TOLERANCE

    @pytest.mark.parametrize("seed", range(6))
    def test_evolve_unitary_delegates_to_local_contraction(self, seed):
        rng = np.random.default_rng(500 + seed)
        num_qubits = int(rng.integers(2, 5))
        state = random_mixed_state(num_qubits, rng)
        arity = int(rng.integers(1, min(num_qubits, 2) + 1))
        qubits = tuple(int(q) for q in rng.choice(num_qubits, size=arity, replace=False))
        unitary = random_unitary(2 ** arity, seed=seed)
        fast = state.evolve_unitary(unitary, qubits).matrix
        slow = _evolve_unitary_expand(state.matrix, unitary, qubits, num_qubits)
        assert np.max(np.abs(fast - slow)) < TOLERANCE

    @pytest.mark.parametrize(
        "channel",
        [
            depolarizing_channel(0.1, num_qubits=1),
            depolarizing_channel(0.2, num_qubits=2),
            amplitude_damping_channel(0.15),
            thermal_relaxation_channel(0.8, t1=30.0, t2=25.0),
        ],
        ids=lambda channel: channel.name,
    )
    def test_evolve_channel_matches_kraus_expansion(self, channel):
        rng = np.random.default_rng(hash(channel.name) % 2 ** 31)
        num_qubits = 4
        state = random_mixed_state(num_qubits, rng)
        qubits = tuple(
            int(q)
            for q in rng.choice(num_qubits, size=channel.num_qubits, replace=False)
        )
        fast = state.evolve_channel(channel, qubits).matrix
        slow = _evolve_channel_expand(state.matrix, channel, qubits, num_qubits)
        assert np.max(np.abs(fast - slow)) < TOLERANCE

    def test_superoperator_matches_kraus_application(self):
        rng = np.random.default_rng(7)
        channel = thermal_relaxation_channel(1.2, t1=50.0, t2=40.0)
        rho = random_mixed_state(1, rng).matrix
        via_superop = (channel.superoperator() @ rho.reshape(-1)).reshape(2, 2)
        assert np.max(np.abs(via_superop - channel.apply(rho))) < TOLERANCE

    def test_superoperator_is_cached_per_channel(self):
        channel = depolarizing_channel(0.05, num_qubits=2)
        assert channel.superoperator() is channel.superoperator()
        assert not channel.superoperator().flags.writeable


class TestPartialTraceEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_trace_reference(self, seed):
        rng = np.random.default_rng(900 + seed)
        num_qubits = int(rng.integers(2, 6))
        keep_size = int(rng.integers(1, num_qubits))
        keep = [int(q) for q in rng.choice(num_qubits, size=keep_size, replace=False)]
        state = random_mixed_state(num_qubits, rng)
        fast = state.partial_trace(keep).matrix
        slow = _reference_partial_trace(state.matrix, keep, num_qubits)
        assert np.max(np.abs(fast - slow)) < TOLERANCE


def _reference_partial_trace(matrix, keep, num_qubits):
    """The pre-vectorization algorithm: per-axis np.trace then reorder."""
    n = num_qubits
    tensor = matrix.reshape([2] * (2 * n))
    keep_axes_row = [n - 1 - q for q in keep]
    traced_axes = [axis for axis in range(n) if axis not in keep_axes_row]
    for offset, axis in enumerate(sorted(traced_axes)):
        tensor = np.trace(tensor, axis1=axis - offset, axis2=axis - offset + n - offset)
    dim = 2 ** len(keep)
    result = tensor.reshape(dim, dim)
    current_order = sorted(keep, reverse=True)
    desired_order = list(reversed(keep))
    if current_order != desired_order:
        k = len(keep)
        tensor = result.reshape([2] * (2 * k))
        permutation = [current_order.index(q) for q in desired_order]
        tensor = np.transpose(tensor, permutation + [p + k for p in permutation])
        result = tensor.reshape(dim, dim)
    return result


class TestEvolutionValidation:
    def test_out_of_range_qubit_raises_instead_of_wrapping(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        with pytest.raises(ValueError, match="out of range"):
            DensityMatrix.ground_state(2).evolve_unitary(x, (2,))
        with pytest.raises(ValueError, match="out of range"):
            DensityMatrix.ground_state(2).evolve_channel(
                depolarizing_channel(0.1), (-3,)
            )

    def test_duplicate_qubits_raise(self):
        with pytest.raises(ValueError, match="distinct"):
            DensityMatrix.ground_state(2).evolve_unitary(np.eye(4), (0, 0))


class TestSampleCountsGuard:
    def test_all_zero_probabilities_raise_value_error(self):
        simulator = DensityMatrixSimulator()
        circuit = QuantumCircuit(1)
        zero = DensityMatrix(np.zeros((2, 2), dtype=complex), num_qubits=1)

        class _ZeroProbabilities(DensityMatrixSimulator):
            def run(self, circuit, initial_state=None, noise_model=None):
                return zero

        with pytest.raises(ValueError, match="all-zero probability"):
            _ZeroProbabilities().sample_counts(circuit, shots=16, seed=3)
        # The normal path still works.
        counts = simulator.sample_counts(circuit, shots=16, seed=3)
        assert counts == {"0": 16}

    def test_counts_are_vectorised_and_complete(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        counts = DensityMatrixSimulator().sample_counts(circuit, shots=512, seed=5)
        assert sum(counts.values()) == 512
        assert set(counts) <= {"00", "11"}


class TestScaledUpCeilings:
    def test_default_ceiling_raised_to_fourteen(self):
        assert DensityMatrixSimulator()._max_qubits >= 14

    def test_rejects_widths_above_hard_limit(self):
        with pytest.raises(ValueError, match="density-matrix limit"):
            DensityMatrixSimulator(max_qubits=20)

    @pytest.mark.slow
    def test_twelve_qubit_noisy_run_completes(self):
        # The legacy engine was capped at 10 qubits; the vectorized engine
        # handles a 12-qubit GHZ circuit with gate + idle noise.
        circuit = QuantumCircuit(12)
        circuit.h(0)
        for qubit in range(11):
            circuit.cx(qubit, qubit + 1)
        model = CircuitNoiseModel(two_qubit_error=0.01, t1=200.0, t2=150.0)
        state = DensityMatrixSimulator().run(circuit, noise_model=model)
        probabilities = state.probabilities()
        assert abs(float(np.sum(probabilities)) - 1.0) < 1e-7
        # Noise leaks population but the GHZ poles still dominate.
        assert probabilities[0] + probabilities[-1] > 0.5
