"""Tests for the density-matrix representation and simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.noise.channels import amplitude_damping_channel, depolarizing_channel
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.simulator.statevector import StatevectorSimulator


def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestDensityMatrixBasics:
    def test_ground_state_is_pure_and_valid(self):
        state = DensityMatrix.ground_state(3)
        assert state.num_qubits == 3
        assert state.purity() == pytest.approx(1.0)
        assert state.trace() == pytest.approx(1.0)
        assert state.is_valid()

    def test_from_statevector_matches_outer_product(self):
        vector = np.array([1.0, 1.0j]) / np.sqrt(2.0)
        state = DensityMatrix.from_statevector(vector)
        assert np.allclose(state.matrix, np.outer(vector, vector.conj()))

    def test_maximally_mixed_purity(self):
        state = DensityMatrix.maximally_mixed(2)
        assert state.purity() == pytest.approx(0.25)
        assert state.is_valid()

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.ones((2, 3)))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(3) / 3.0)

    def test_rejects_mismatched_num_qubits(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(4) / 4.0, num_qubits=1)

    def test_probabilities_of_ground_state(self):
        probabilities = DensityMatrix.ground_state(2).probabilities()
        assert probabilities[0] == pytest.approx(1.0)
        assert np.sum(probabilities) == pytest.approx(1.0)

    def test_expectation_of_z_on_ground_state(self):
        z = np.diag([1.0, -1.0]).astype(complex)
        state = DensityMatrix.ground_state(1)
        assert state.expectation(z) == pytest.approx(1.0)

    def test_expectation_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(2).expectation(np.eye(2))


class TestEvolution:
    def test_unitary_evolution_matches_statevector(self):
        circuit = bell_circuit()
        state = DensityMatrix.ground_state(2)
        for instruction in circuit:
            state = state.evolve_unitary(instruction.gate.matrix(), instruction.qubits)
        reference = StatevectorSimulator().run(circuit)
        assert state.state_fidelity_with_statevector(reference) == pytest.approx(1.0)

    def test_gate_argument_order_is_respected(self):
        # CX with control 1 / target 0 flips |01> (little-endian q1=0,q0=1? no:
        # prepare q1 = 1 via X on qubit 1, then CX(1, 0) must flip qubit 0.
        circuit = QuantumCircuit(2)
        circuit.x(1)
        circuit.cx(1, 0)
        state = DensityMatrixSimulator().run(circuit)
        probabilities = state.probabilities()
        assert probabilities[0b11] == pytest.approx(1.0)

    def test_channel_evolution_preserves_validity(self):
        state = DensityMatrix.ground_state(2)
        state = state.evolve_channel(depolarizing_channel(0.3), (0,))
        state = state.evolve_channel(amplitude_damping_channel(0.2), (1,))
        assert state.is_valid()

    def test_channel_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(2).evolve_channel(depolarizing_channel(0.1), (0, 1))

    def test_depolarizing_reduces_purity(self):
        circuit = bell_circuit()
        pure = DensityMatrixSimulator().run(circuit)
        noisy = pure.evolve_channel(depolarizing_channel(0.2, num_qubits=2), (0, 1))
        assert noisy.purity() < pure.purity()


class TestFidelity:
    def test_fidelity_with_itself_is_one(self):
        state = DensityMatrixSimulator().run(bell_circuit())
        assert state.fidelity(state) == pytest.approx(1.0)

    def test_fidelity_orthogonal_states(self):
        zero = DensityMatrix.ground_state(1)
        one = DensityMatrix.from_statevector(np.array([0.0, 1.0]))
        assert zero.fidelity(one) == pytest.approx(0.0, abs=1e-12)

    def test_fidelity_of_mixed_states_symmetric(self):
        a = DensityMatrix.maximally_mixed(1)
        b = DensityMatrix(np.diag([0.8, 0.2]).astype(complex))
        assert a.fidelity(b) == pytest.approx(b.fidelity(a))

    def test_fidelity_mixed_against_pure_matches_overlap(self):
        mixed = DensityMatrix(np.diag([0.7, 0.3]).astype(complex))
        pure = np.array([1.0, 0.0], dtype=complex)
        assert mixed.state_fidelity_with_statevector(pure) == pytest.approx(0.7)

    def test_fidelity_dimension_mismatch(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(1).fidelity(DensityMatrix.ground_state(2))

    def test_statevector_fidelity_dimension_mismatch(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(2).state_fidelity_with_statevector(np.array([1.0, 0.0]))


class TestPartialTrace:
    def test_partial_trace_of_product_state(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = DensityMatrixSimulator().run(circuit)
        reduced = state.partial_trace([0])
        assert reduced.num_qubits == 1
        assert reduced.probabilities()[1] == pytest.approx(1.0)
        other = state.partial_trace([1])
        assert other.probabilities()[0] == pytest.approx(1.0)

    def test_partial_trace_of_bell_state_is_maximally_mixed(self):
        state = DensityMatrixSimulator().run(bell_circuit())
        reduced = state.partial_trace([0])
        assert np.allclose(reduced.matrix, np.eye(2) / 2.0, atol=1e-9)

    def test_partial_trace_keeps_trace_one(self):
        state = DensityMatrixSimulator().run(bell_circuit())
        assert state.partial_trace([1]).trace() == pytest.approx(1.0)

    def test_partial_trace_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(2).partial_trace([0, 0])

    def test_partial_trace_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DensityMatrix.ground_state(2).partial_trace([5])


class TestSimulator:
    def test_noiseless_run_matches_statevector(self):
        circuit = QuantumCircuit(3, name="ghz")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        dm = DensityMatrixSimulator().run(circuit)
        sv = StatevectorSimulator().run(circuit)
        assert dm.state_fidelity_with_statevector(sv) == pytest.approx(1.0)

    def test_width_limit_enforced(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator(max_qubits=2).run(QuantumCircuit(3))

    def test_initial_state_mismatch(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(
                QuantumCircuit(2), initial_state=DensityMatrix.ground_state(1)
            )

    def test_noisy_run_reduces_fidelity(self):
        circuit = bell_circuit()
        model = CircuitNoiseModel(two_qubit_error=0.05, t1=50.0, t2=50.0)
        noisy = DensityMatrixSimulator().run(circuit, noise_model=model)
        ideal = StatevectorSimulator().run(circuit)
        fidelity = noisy.state_fidelity_with_statevector(ideal)
        assert 0.5 < fidelity < 1.0

    def test_sample_counts_sum_to_shots(self):
        counts = DensityMatrixSimulator().sample_counts(bell_circuit(), shots=256, seed=11)
        assert sum(counts.values()) == 256
        assert set(counts) <= {"00", "11", "01", "10"}

    def test_barriers_are_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        state = DensityMatrixSimulator().run(circuit)
        assert state.probabilities()[0] == pytest.approx(0.5)


class TestDensityMatrixProperties:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_random_circuit_evolution_stays_valid(self, seed):
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(3)
        for _ in range(6):
            kind = rng.integers(3)
            if kind == 0:
                circuit.rx(float(rng.uniform(0, np.pi)), int(rng.integers(3)))
            elif kind == 1:
                circuit.rz(float(rng.uniform(0, np.pi)), int(rng.integers(3)))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cx(int(a), int(b))
        model = CircuitNoiseModel(
            one_qubit_error=0.01, two_qubit_error=0.03, t1=40.0, t2=30.0
        )
        state = DensityMatrixSimulator().run(circuit, noise_model=model)
        assert state.is_valid()
        assert abs(np.sum(state.probabilities()) - 1.0) < 1e-7
