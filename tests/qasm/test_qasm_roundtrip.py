"""Tests for OpenQASM 2 export and import."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.gates import FSimGate, NthRootISwapGate, SycamoreGate, ZXGate
from repro.linalg.fidelity import hilbert_schmidt_fidelity
from repro.qasm import QasmExportError, QasmParseError, circuit_from_qasm, circuit_to_qasm
from repro.topology import get_topology
from repro.transpiler import transpile
from repro.workloads import build_workload


def roundtrip(circuit: QuantumCircuit) -> QuantumCircuit:
    return circuit_from_qasm(circuit_to_qasm(circuit))


class TestExporter:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3, name="demo")
        circuit.h(0)
        text = circuit_to_qasm(circuit)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text
        assert text.startswith("// demo")

    def test_parameterised_gates_serialised_with_values(self):
        circuit = QuantumCircuit(2)
        circuit.rz(np.pi / 4, 0)
        circuit.cp(0.25, 0, 1)
        text = circuit_to_qasm(circuit)
        assert "rz(0.785398163397) q[0];" in text
        assert "cp(0.25) q[0],q[1];" in text

    def test_extension_gates_declared_opaque(self):
        circuit = QuantumCircuit(2)
        circuit.siswap(0, 1)
        circuit.append(SycamoreGate(), (0, 1))
        text = circuit_to_qasm(circuit)
        assert "opaque siswap a,b;" in text
        assert "opaque syc a,b;" in text
        assert "siswap q[0],q[1];" in text

    def test_nth_root_iswap_exported_with_root(self):
        circuit = QuantumCircuit(2)
        circuit.append(NthRootISwapGate(4), (0, 1))
        text = circuit_to_qasm(circuit)
        assert "opaque niswap(n) a,b;" in text
        assert "niswap(4) q[0],q[1];" in text

    def test_unitary_gate_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(np.eye(4), (0, 1))
        with pytest.raises(QasmExportError):
            circuit_to_qasm(circuit)

    def test_header_comment_can_be_suppressed(self):
        circuit = QuantumCircuit(1)
        text = circuit_to_qasm(circuit, include_header_comment=False)
        assert text.startswith("OPENQASM")

    def test_barrier_serialised(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        assert "barrier q[0],q[1];" in circuit_to_qasm(circuit)


class TestParser:
    def test_minimal_program(self):
        circuit = circuit_from_qasm(
            'OPENQASM 2.0; include "qelib1.inc"; qreg q[2]; h q[0]; cx q[0],q[1];'
        )
        assert circuit.num_qubits == 2
        assert circuit.count_ops() == {"h": 1, "cx": 1}

    def test_parameters_with_pi_expressions(self):
        circuit = circuit_from_qasm(
            "OPENQASM 2.0; qreg q[1]; rz(pi/2) q[0]; rx(-pi/4) q[0];"
        )
        assert circuit.instructions[0].gate.params[0] == pytest.approx(np.pi / 2)
        assert circuit.instructions[1].gate.params[0] == pytest.approx(-np.pi / 4)

    def test_measure_and_creg_ignored(self):
        circuit = circuit_from_qasm(
            "OPENQASM 2.0; qreg q[1]; creg c[1]; h q[0]; measure q[0] -> c[0];"
        )
        assert circuit.count_ops() == {"h": 1}

    def test_missing_header_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("qreg q[2]; h q[0];")

    def test_missing_register_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; h q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; frobnicate q[0];")

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[2]; h q[5];")

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; rz q[0];")

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[2]; cx q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];")

    def test_two_registers_rejected(self):
        with pytest.raises(QasmParseError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; qreg r[1]; h q[0];")

    def test_comments_are_stripped(self):
        circuit = circuit_from_qasm(
            "OPENQASM 2.0; // header\nqreg q[1];\nh q[0]; // flip\n"
        )
        assert circuit.count_ops() == {"h": 1}


class TestRoundtrip:
    def unitaries_match(self, circuit: QuantumCircuit) -> bool:
        rebuilt = roundtrip(circuit)
        fidelity = hilbert_schmidt_fidelity(circuit.to_unitary(), rebuilt.to_unitary())
        return abs(fidelity - 1.0) < 1e-9

    def test_ghz_roundtrip(self):
        assert self.unitaries_match(build_workload("GHZ", 4))

    def test_qft_roundtrip(self):
        assert self.unitaries_match(build_workload("QFT", 4))

    def test_adder_roundtrip_gate_counts(self):
        circuit = build_workload("Adder", 6)
        rebuilt = roundtrip(circuit)
        assert rebuilt.count_ops() == circuit.count_ops()

    def test_siswap_heavy_circuit_roundtrip(self):
        circuit = QuantumCircuit(3)
        circuit.siswap(0, 1)
        circuit.append(NthRootISwapGate(3), (1, 2))
        circuit.append(FSimGate(0.3, 0.1), (0, 2))
        circuit.append(ZXGate(0.5), (0, 1))
        assert self.unitaries_match(circuit)

    def test_transpiled_circuit_roundtrip(self):
        device = get_topology("Tree", scale="small")
        circuit = build_workload("GHZ", 6)
        result = transpile(circuit, device, basis_name="siswap", translation_mode="synthesis")
        rebuilt = roundtrip(result.circuit)
        assert rebuilt.two_qubit_gate_count() == result.circuit.two_qubit_gate_count()

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_roundtrip_preserves_unitary(self, seed):
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(3)
        for _ in range(10):
            kind = rng.integers(5)
            if kind == 0:
                circuit.rz(float(rng.uniform(-np.pi, np.pi)), int(rng.integers(3)))
            elif kind == 1:
                circuit.u3(*[float(rng.uniform(-np.pi, np.pi)) for _ in range(3)], int(rng.integers(3)))
            elif kind == 2:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cx(int(a), int(b))
            elif kind == 3:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.siswap(int(a), int(b))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.rzz(float(rng.uniform(-np.pi, np.pi)), int(a), int(b))
        assert self.unitaries_match(circuit)
