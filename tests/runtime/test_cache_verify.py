"""Tests for ``verify_cache`` and the ``repro cache verify`` command.

The verifier is the offline half of the cache's integrity story (the
online half being CRC checks at read time): it re-parses every segment
from byte zero, recomputes every payload CRC, audits the sidecar
indexes against the scan, and — with ``repair=True`` — rewrites damaged
segments keeping only the valid frames.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.runtime.disk_cache import PersistentResultCache, verify_cache
from repro.runtime.faults import write_corrupt_frame


@pytest.fixture
def populated(tmp_path):
    """A cache directory holding five healthy records."""
    cache = PersistentResultCache(tmp_path)
    for index in range(5):
        cache.put(("point", index), {"value": index * 10})
    cache.close()
    return tmp_path


class TestVerifyCache:
    def test_clean_cache_reports_clean(self, populated):
        report = verify_cache(populated)
        assert report.clean
        assert report.frames_ok == 5
        assert report.frames_corrupt == 0
        assert "verdict: clean" in report.describe()

    def test_corrupt_frame_is_detected(self, populated):
        write_corrupt_frame(populated, ("point", 99))
        report = verify_cache(populated)
        assert not report.clean
        assert report.frames_corrupt == 1
        assert report.frames_ok == 5
        assert "verdict: CORRUPT" in report.describe()

    def test_repair_drops_only_the_bad_frames(self, populated):
        write_corrupt_frame(populated, ("point", 99))
        report = verify_cache(populated, repair=True)
        assert report.dropped_frames == 1
        assert report.repaired_segments >= 1
        assert verify_cache(populated).clean
        fresh = PersistentResultCache(populated)
        for index in range(5):
            assert fresh.get(("point", index)) == {"value": index * 10}
        fresh.close()

    def test_torn_tail_is_detected_and_repaired(self, populated):
        segment = sorted(populated.glob("seg-*.rps"))[0]
        with open(segment, "ab") as handle:
            handle.write(b"\x00torn-tail-garbage")
        report = verify_cache(populated)
        assert not report.clean
        assert report.torn_segments == 1
        assert report.torn_bytes > 0
        verify_cache(populated, repair=True)
        assert verify_cache(populated).clean

    def test_stale_sidecar_is_detected_and_rebuilt(self, populated):
        sidecars = sorted(populated.glob("seg-*.rpi"))
        assert sidecars
        sidecars[0].write_bytes(b"not a sidecar")
        report = verify_cache(populated)
        assert report.sidecars_stale >= 1
        verify_cache(populated, repair=True)
        assert verify_cache(populated).clean

    def test_empty_directory_is_clean(self, tmp_path):
        report = verify_cache(tmp_path)
        assert report.clean
        assert report.segments == 0


class TestCacheVerifyCli:
    def test_clean_exits_zero(self, populated, capsys):
        assert main(["cache", "verify", "--cache-dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out

    def test_corrupt_without_repair_exits_nonzero(self, populated):
        write_corrupt_frame(populated, ("point", 99))
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "verify", "--cache-dir", str(populated)])
        assert "--repair" in str(excinfo.value)

    def test_repair_fixes_and_exits_zero(self, populated, capsys):
        write_corrupt_frame(populated, ("point", 99))
        code = main(["cache", "verify", "--cache-dir", str(populated), "--repair"])
        assert code == 0
        assert "repaired" in capsys.readouterr().out
        assert verify_cache(populated).clean

    def test_missing_directory_is_a_noop(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["cache", "verify", "--cache-dir", str(missing)]) == 0
        assert "no cache directory" in capsys.readouterr().out
