"""Tests for the unitary, decomposition and result caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gate import UnitaryGate
from repro.decomposition import DecompositionCache, sqiswap_basis
from repro.gates import CXGate, CZGate, RZGate, SqrtISwapGate
from repro.linalg import LRUCache
from repro.linalg.random import random_unitary
from repro.linalg.weyl import weyl_coordinates
from repro.runtime import ResultCache, backend_cache_key
from repro.transpiler import BasisTranslation, PropertySet


class TestLRUCache:
    def test_get_or_create_and_hit_counters(self):
        cache = LRUCache(maxsize=4)
        assert cache.get_or_create("a", lambda: 1) == 1
        assert cache.get_or_create("a", lambda: 2) == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses >= 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_least_recently_used_eviction(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestUnitaryCache:
    def test_cached_matrix_equals_matrix(self):
        for gate in (CXGate(), SqrtISwapGate(), RZGate(0.3)):
            assert np.array_equal(gate.cached_matrix(), gate.matrix())

    def test_instances_share_one_entry(self):
        first = CXGate().cached_matrix()
        second = CXGate().cached_matrix()
        assert first is second  # same frozen buffer, keyed on (name, params)

    def test_cached_matrix_is_frozen(self):
        matrix = CXGate().cached_matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 0.0

    def test_parametrised_gates_keyed_by_params(self):
        assert not np.array_equal(
            RZGate(0.1).cached_matrix(), RZGate(0.2).cached_matrix()
        )

    def test_unitary_gate_cached_matrix(self):
        matrix = random_unitary(4, np.random.default_rng(5))
        gate = UnitaryGate(matrix)
        assert np.allclose(gate.cached_matrix(), matrix)
        with pytest.raises(ValueError):
            gate.cached_matrix()[0, 0] = 0.0


class TestDecompositionCache:
    def test_coordinates_cached_once(self):
        cache = DecompositionCache()
        matrix = CXGate().matrix()
        first = cache.coordinates(matrix)
        second = cache.coordinates(matrix)
        assert first == second
        stats = cache.stats()["coordinates"]
        assert stats.hits == 1 and stats.currsize == 1

    def test_locally_equivalent_gates_share_count_entry(self):
        cache = DecompositionCache()
        basis = sqiswap_basis()
        cx_coords = cache.coordinates(CXGate().matrix())
        cz_coords = cache.coordinates(CZGate().matrix())
        count_cx = cache.count(basis.name, cx_coords, basis.count)
        count_cz = cache.count(basis.name, cz_coords, basis.count)
        # CX and CZ share the canonical class (pi/4, 0, 0) -> one entry.
        assert count_cx == count_cz
        assert cache.stats()["counts"].currsize == 1

    def test_synthesis_cache_round_trip(self):
        cache = DecompositionCache()
        basis = sqiswap_basis()
        coords = weyl_coordinates(CXGate().matrix())
        assert cache.synthesis(basis.name, coords, "fp") is None
        circuit = QuantumCircuit(2)
        cache.store_synthesis(basis.name, coords, "fp", circuit)
        assert cache.synthesis(basis.name, coords, "fp") is circuit
        # Keyed on the exact fingerprint: a locally equivalent target with a
        # different fingerprint must not inherit this circuit.
        assert cache.synthesis(basis.name, coords, "other-fp") is None

    def test_translation_results_identical_across_shared_cache(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.swap(1, 2)
        cache = DecompositionCache()
        cold = BasisTranslation(sqiswap_basis(), cache=cache).run(
            circuit, PropertySet()
        )
        warm = BasisTranslation(sqiswap_basis(), cache=cache).run(
            circuit, PropertySet()
        )
        assert cold.count_ops() == warm.count_ops()
        assert [inst.qubits for inst in cold] == [inst.qubits for inst in warm]


class TestResultCache:
    def test_round_trip_returns_equal_copy(self):
        from repro.core.backend import make_backend
        from repro.core.pipeline import run_point
        from repro.topology.registry import small_topologies

        backend = make_backend(
            small_topologies()["Corral1,1"], "siswap", name="Corral1,1-siswap"
        )
        record = run_point("GHZ", 5, backend, seed=1)
        cache = ResultCache()
        cache.put("key", record)
        cached = cache.get("key")
        assert cached is not record
        assert cached.as_dict() == record.as_dict()
        # Mutating the returned extras must not corrupt the cached copy.
        cached.extra["workload"] = "tampered"
        assert cache.get("key").as_dict() == record.as_dict()

    def test_missing_key_returns_none(self):
        assert ResultCache().get("absent") is None

    def test_backend_key_distinguishes_topologies(self):
        from repro.core.backend import make_backend
        from repro.topology.registry import small_topologies

        registry = small_topologies()
        same_name_a = make_backend(registry["Corral1,1"], "siswap", name="X")
        same_name_b = make_backend(registry["Hypercube"], "siswap", name="X")
        assert backend_cache_key(same_name_a) != backend_cache_key(same_name_b)
