"""Sharded checkpoint/resume: manifest identity, shard IO, sweep parity."""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_sweep, run_sweep_sharded, sweep_spec_digest
from repro.runtime.checkpoint import (
    SHARD_MAGIC,
    CheckpointMismatch,
    SweepCheckpoint,
)
from repro.transpiler.target import Target

pytestmark = pytest.mark.fast


@pytest.fixture
def target():
    return Target.from_names("Corral1,1", "siswap", scale="small")


class TestSweepCheckpoint:
    def test_initialize_writes_manifest(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "run")
        assert not checkpoint.exists()
        checkpoint.initialize("abc123", total_points=10, shard_points=4)
        assert checkpoint.exists()
        assert checkpoint.num_shards == 3  # ceil(10 / 4)
        assert checkpoint.manifest["spec_digest"] == "abc123"

    def test_reinitialize_same_spec_is_accepted(self, tmp_path):
        SweepCheckpoint(tmp_path).initialize("abc", 10, 4)
        again = SweepCheckpoint(tmp_path).initialize("abc", 10, 4)
        assert again.num_shards == 3

    @pytest.mark.parametrize(
        "digest, total, shard",
        [("other", 10, 4), ("abc", 11, 4), ("abc", 10, 5)],
    )
    def test_initialize_rejects_different_spec(self, tmp_path, digest, total, shard):
        SweepCheckpoint(tmp_path).initialize("abc", 10, 4)
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint(tmp_path).initialize(digest, total, shard)

    def test_unreadable_manifest_counts_as_mismatch(self, tmp_path):
        SweepCheckpoint(tmp_path).initialize("abc", 10, 4)
        (tmp_path / "manifest.json").write_bytes(b"{corrupt")
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint(tmp_path).initialize("abc", 10, 4)

    def test_store_and_load_shard_roundtrip(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path).initialize("abc", 6, 2)
        records = [{"point": index} for index in range(2)]
        checkpoint.store_shard(1, records)
        assert checkpoint.completed_shards() == {1}
        assert checkpoint.load_shard(1) == records
        assert checkpoint.load_shard(0) is None

    def test_corrupt_shard_reads_as_missing(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path).initialize("abc", 4, 2)
        checkpoint.store_shard(0, [{"point": 0}])
        path = tmp_path / "shard-00000.rsd"
        path.write_bytes(SHARD_MAGIC + b"garbage that is not zlib")
        assert checkpoint.load_shard(0) is None
        path.write_bytes(b"WRONGMAGIC")
        assert checkpoint.load_shard(0) is None

    def test_clear_removes_manifest_and_shards(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path).initialize("abc", 4, 2)
        checkpoint.store_shard(0, [1, 2])
        checkpoint.clear()
        assert not checkpoint.exists()
        assert checkpoint.completed_shards() == set()


class TestSpecDigest:
    def test_digest_is_stable_and_spec_sensitive(self, target):
        base = sweep_spec_digest(["GHZ"], [4, 6], [target], 0, None, None, 1)
        assert base == sweep_spec_digest(["GHZ"], [4, 6], [target], 0, None, None, 1)
        assert base != sweep_spec_digest(["GHZ"], [4, 5], [target], 0, None, None, 1)
        assert base != sweep_spec_digest(["GHZ"], [4, 6], [target], 7, None, None, 1)
        assert base != sweep_spec_digest(
            ["GHZ"], [4, 6], [target], 0, "dense", None, 1
        )


class TestRunSweepSharded:
    def test_matches_run_sweep_record_for_record(self, tmp_path, target):
        sharded = run_sweep_sharded(
            ["GHZ"], [4, 5, 6], [target], tmp_path / "ckpt", shard_points=2
        )
        direct = run_sweep(["GHZ"], [4, 5, 6], [target])
        assert [r.as_dict() for r in sharded.records] == [
            r.as_dict() for r in direct.records
        ]

    def test_resume_restores_all_shards(self, tmp_path, target):
        statuses = []

        def watch(index, total, status, points):
            statuses.append(status)

        first = run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [target],
            tmp_path,
            shard_points=2,
            shard_progress=watch,
        )
        assert statuses == ["computed", "computed"]
        statuses.clear()
        second = run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [target],
            tmp_path,
            shard_points=2,
            shard_progress=watch,
        )
        assert statuses == ["restored", "restored"]
        assert [r.as_dict() for r in second.records] == [
            r.as_dict() for r in first.records
        ]

    def test_missing_shard_is_the_only_one_recomputed(self, tmp_path, target):
        run_sweep_sharded(["GHZ"], [4, 5, 6], [target], tmp_path, shard_points=1)
        (tmp_path / "shard-00001.rsd").unlink()
        statuses = {}

        def watch(index, total, status, points):
            statuses[index] = status

        run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [target],
            tmp_path,
            shard_points=1,
            shard_progress=watch,
        )
        assert statuses == {0: "restored", 1: "computed", 2: "restored"}

    def test_no_resume_refuses_existing_checkpoint(self, tmp_path, target):
        run_sweep_sharded(["GHZ"], [4], [target], tmp_path, shard_points=2)
        with pytest.raises(CheckpointMismatch):
            run_sweep_sharded(
                ["GHZ"], [4], [target], tmp_path, shard_points=2, resume=False
            )

    def test_different_spec_refuses_same_directory(self, tmp_path, target):
        run_sweep_sharded(["GHZ"], [4], [target], tmp_path, shard_points=2)
        with pytest.raises(CheckpointMismatch):
            run_sweep_sharded(["GHZ"], [5], [target], tmp_path, shard_points=2)

    def test_wrong_length_shard_is_recomputed(self, tmp_path, target):
        run_sweep_sharded(["GHZ"], [4, 5], [target], tmp_path, shard_points=2)
        # Truncate shard 0 to a single record: plausible file, wrong length.
        checkpoint = SweepCheckpoint(tmp_path)
        records = checkpoint.load_shard(0)
        checkpoint.store_shard(0, records[:1])
        statuses = []
        result = run_sweep_sharded(
            ["GHZ"],
            [4, 5],
            [target],
            tmp_path,
            shard_points=2,
            shard_progress=lambda i, n, status, k: statuses.append(status),
        )
        assert statuses == ["computed"]
        assert len(result.records) == 2
