"""Crash recovery: a SIGKILLed sweep resumes, recomputing only what died.

The checkpoint layer's whole reason to exist is the process that never
got to exit cleanly.  These tests kill a real sweep subprocess mid-flight
(after its first shard is durable) and assert the resume path — both the
library call and the ``repro sweep --resume`` CLI — restores the finished
shards and recomputes exactly the missing ones.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.pipeline import run_sweep, run_sweep_sharded
from repro.runtime.checkpoint import SweepCheckpoint
from repro.transpiler.target import Target

pytestmark = pytest.mark.fast

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Target construction identical to ``repro sweep --topologies Corral1,1``.
_TARGET_EXPR = (
    'Target.from_names("Corral1,1", "siswap", scale="small", '
    'name="Corral1,1-siswap")'
)

_KILL_SCRIPT = f"""
import os, signal
from repro.core.pipeline import run_sweep_sharded
from repro.transpiler.target import Target

def die_after_first_shard(index, total, status, points):
    os.kill(os.getpid(), signal.SIGKILL)

run_sweep_sharded(
    ["GHZ"], [4, 5, 6], [{_TARGET_EXPR}], {{checkpoint_dir!r}},
    shard_points=1, shard_progress=die_after_first_shard,
)
"""


def _run_sweep_to_death(checkpoint_dir: Path) -> subprocess.CompletedProcess:
    """Run a sharded sweep in a subprocess that SIGKILLs itself after
    its first shard has been persisted."""
    env = dict(os.environ, PYTHONPATH=_SRC)
    env.pop("REPRO_CACHE_DIR", None)
    return subprocess.run(
        [sys.executable, "-c", _KILL_SCRIPT.format(checkpoint_dir=str(checkpoint_dir))],
        env=env,
        capture_output=True,
        timeout=120,
    )


def _target() -> Target:
    return Target.from_names(
        "Corral1,1", "siswap", scale="small", name="Corral1,1-siswap"
    )


class TestSigkillResume:
    def test_killed_sweep_leaves_a_partial_checkpoint(self, tmp_path):
        process = _run_sweep_to_death(tmp_path / "ckpt")
        assert process.returncode == -signal.SIGKILL
        checkpoint = SweepCheckpoint(tmp_path / "ckpt")
        assert checkpoint.exists()
        # The progress callback fires after the shard hits disk, so the
        # first shard is durable and the other two never happened.
        assert checkpoint.completed_shards() == {0}

    def test_resume_recomputes_only_the_missing_shards(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        process = _run_sweep_to_death(checkpoint_dir)
        assert process.returncode == -signal.SIGKILL
        statuses = {}
        result = run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [_target()],
            checkpoint_dir,
            shard_points=1,
            shard_progress=lambda i, n, status, k: statuses.setdefault(i, status),
        )
        assert statuses == {0: "restored", 1: "computed", 2: "computed"}
        direct = run_sweep(["GHZ"], [4, 5, 6], [_target()])
        assert [r.as_dict() for r in result.records] == [
            r.as_dict() for r in direct.records
        ]

    def test_cli_resume_after_kill(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        process = _run_sweep_to_death(checkpoint_dir)
        assert process.returncode == -signal.SIGKILL
        exit_code = main(
            [
                "sweep",
                "--checkpoint-dir",
                str(checkpoint_dir),
                "--resume",
                "--shard-points",
                "1",
                "--workloads",
                "GHZ",
                "--sizes",
                "4",
                "5",
                "6",
                "--topologies",
                "Corral1,1",
                "--seed",
                "0",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "shard 1/3: restored (1 points)" in captured.err
        assert "shard 2/3: computed (1 points)" in captured.err
        assert "sweep complete: 3 points (1 shards restored, 2 computed)" in (
            captured.out
        )

    def test_cli_without_resume_refuses_the_partial_checkpoint(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        _run_sweep_to_death(checkpoint_dir)
        with pytest.raises(SystemExit, match="repro sweep:"):
            main(
                [
                    "sweep",
                    "--checkpoint-dir",
                    str(checkpoint_dir),
                    "--workloads",
                    "GHZ",
                    "--sizes",
                    "4",
                    "5",
                    "6",
                    "--topologies",
                    "Corral1,1",
                    "--seed",
                    "0",
                ]
            )
