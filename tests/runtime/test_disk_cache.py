"""Disk-backed result cache: round-trip, cross-instance reuse, corruption."""

from __future__ import annotations

import pickle
import zlib

import pytest

from repro.core.pipeline import run_point
from repro.runtime import (
    CACHE_DIR_ENV,
    PersistentResultCache,
    cache_dir_from_env,
    key_digest,
    resolve_result_cache,
    ResultCache,
)
from repro.runtime.cache import point_cache_key
from repro.topology.registry import small_topologies
from repro.transpiler.target import make_target


@pytest.fixture
def target():
    return make_target(small_topologies()["Corral1,1"], "siswap", name="Corral1,1-siswap")


@pytest.fixture
def record(target):
    return run_point("GHZ", 5, target, seed=1)


class TestPersistentResultCache:
    def test_round_trip_same_instance(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        cached = cache.get("key")
        assert cached is not record
        assert cached.as_dict() == record.as_dict()

    def test_second_instance_reads_from_disk(self, tmp_path, record):
        PersistentResultCache(tmp_path).put("key", record)
        fresh = PersistentResultCache(tmp_path)  # simulates a new process
        cached = fresh.get("key")
        assert cached is not None
        assert cached.as_dict() == record.as_dict()
        stats = fresh.stats()
        assert stats.disk_hits == 1
        assert stats.computed == 0

    def test_disk_hit_promotes_into_memory(self, tmp_path, record):
        PersistentResultCache(tmp_path).put("key", record)
        fresh = PersistentResultCache(tmp_path)
        fresh.get("key")
        assert fresh.get("key") is not None
        stats = fresh.stats()
        assert stats.hits == 1  # second lookup served by the LRU
        assert stats.disk_hits == 1

    def test_missing_key_counts_disk_miss(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        assert cache.get("absent") is None
        stats = cache.stats()
        assert stats.disk_misses == 1
        assert stats.hit_rate == 0.0

    def test_truncated_segment_tail_is_a_miss_not_a_crash(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("seg-*.rps")
        path.write_bytes(path.read_bytes()[:-7])  # a killed writer's torn frame
        fresh = PersistentResultCache(tmp_path)
        assert fresh.get("key") is None
        # Compaction physically heals the torn tail (drops the segment).
        fresh.gc(compact=True)
        assert not path.exists()

    def test_garbage_segment_is_a_miss(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("seg-*.rps")
        path.write_bytes(b"not a cache segment at all")
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_valid_frame_corrupt_payload_is_a_miss(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("seg-*.rps")
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip a payload byte; the frame CRC must reject it
        path.write_bytes(bytes(blob))
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_unpicklable_record_degrades_to_memory_only(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", lambda: None)  # lambdas cannot pickle
        assert cache.disk_entries() == 0
        assert cache.get("key") is not None  # the LRU still serves it

    def test_clear_removes_disk_records(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        assert cache.disk_entries() == 1
        cache.clear()
        assert cache.disk_entries() == 0
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_stale_temp_files_are_swept(self, tmp_path):
        import os

        stale = tmp_path / "deadbeef1234.tmp"
        stale.write_bytes(b"partial write of a crashed process")
        old = 1_000_000_000  # well past the staleness cutoff
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafecafe5678.tmp"
        fresh.write_bytes(b"a concurrent writer's live staging file")
        PersistentResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()

    def test_clear_also_removes_temp_files(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (tmp_path / "orphan.tmp").write_bytes(b"leftover")
        cache.clear()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_point_keys_digest_identically_across_processes(self, target):
        key = point_cache_key("GHZ", 5, target, 1, "dense", "sabre")
        assert key_digest(key) == key_digest(
            point_cache_key("GHZ", 5, target, 1, "dense", "sabre")
        )
        assert key_digest(key) != key_digest(
            point_cache_key("GHZ", 6, target, 1, "dense", "sabre")
        )

    def test_segment_format_is_framed_compressed_pickle(self, tmp_path, record):
        from repro.runtime.disk_cache import _FRAME, SEGMENT_MAGIC

        PersistentResultCache(tmp_path).put("key", record)
        (path,) = tmp_path.glob("seg-*.rps")
        blob = path.read_bytes()
        assert blob.startswith(SEGMENT_MAGIC)
        magic, digest, _mtime, length, crc = _FRAME.unpack_from(
            blob, len(SEGMENT_MAGIC)
        )
        assert magic == b"RF"
        assert digest.hex() == key_digest("key")
        payload = blob[len(SEGMENT_MAGIC) + _FRAME.size :]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        restored = pickle.loads(zlib.decompress(payload))
        assert restored.as_dict() == record.as_dict()

    def test_many_records_share_one_segment_file(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        for index in range(50):
            cache.put(("key", index), record)
        assert len(list(tmp_path.glob("seg-*.rps"))) == 1
        assert cache.disk_entries() == 50

    def test_segments_rotate_at_the_size_bound(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path, segment_max_bytes=4096)
        for index in range(50):
            cache.put(("key", index), record)
        segments = list(tmp_path.glob("seg-*.rps"))
        assert len(segments) > 1
        # Every sealed (rotated-away) segment carries a sidecar index.
        sidecars = list(tmp_path.glob("seg-*.rpi"))
        assert len(sidecars) == len(segments) - 1
        fresh = PersistentResultCache(tmp_path)
        assert fresh.disk_entries() == 50
        assert fresh.get(("key", 17)) is not None

    def test_close_seals_the_active_segment(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        assert list(tmp_path.glob("seg-*.rpi")) == []
        cache.close()
        assert len(list(tmp_path.glob("seg-*.rpi"))) == 1
        assert PersistentResultCache(tmp_path).get("key") is not None

    def test_legacy_record_files_stay_readable(self, tmp_path, record):
        import struct

        payload = zlib.compress(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        legacy = tmp_path / f"{key_digest('key')}.rpc"
        legacy.write_bytes(b"RPRC1\n" + struct.pack(">Q", len(payload)) + payload)
        fresh = PersistentResultCache(tmp_path)
        cached = fresh.get("key")
        assert cached is not None
        assert cached.as_dict() == record.as_dict()
        assert fresh.stats().disk_hits == 1

    def test_gc_compaction_migrates_legacy_records_into_segments(
        self, tmp_path, record
    ):
        import struct

        payload = zlib.compress(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        legacy = tmp_path / f"{key_digest('key')}.rpc"
        legacy.write_bytes(b"RPRC1\n" + struct.pack(">Q", len(payload)) + payload)
        cache = PersistentResultCache(tmp_path)
        report = cache.gc(compact=True)
        assert not legacy.exists()
        assert report.segments_written == 1
        assert cache.get("key") is not None  # served from the new segment


class TestResolveResultCache:
    def test_no_cache_wins(self, tmp_path):
        assert resolve_result_cache(cache_dir=tmp_path, no_cache=True) is None

    def test_explicit_dir_builds_persistent_cache(self, tmp_path):
        cache = resolve_result_cache(cache_dir=tmp_path)
        assert isinstance(cache, PersistentResultCache)
        assert cache.cache_dir == tmp_path

    def test_env_dir_builds_persistent_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert cache_dir_from_env() == str(tmp_path)
        cache = resolve_result_cache()
        assert isinstance(cache, PersistentResultCache)

    def test_default_is_memory_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = resolve_result_cache()
        assert isinstance(cache, ResultCache)
        assert not isinstance(cache, PersistentResultCache)


class TestCliIntegration:
    def test_second_cli_invocation_transpiles_nothing(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["headline", "--sizes", "4", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "transpiled" in cold.err
        assert "0 disk hits" in cold.err

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert " 0 transpiled" in warm.err
