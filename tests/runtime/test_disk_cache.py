"""Disk-backed result cache: round-trip, cross-instance reuse, corruption."""

from __future__ import annotations

import pickle
import zlib

import pytest

from repro.core.pipeline import run_point
from repro.runtime import (
    CACHE_DIR_ENV,
    PersistentResultCache,
    cache_dir_from_env,
    key_digest,
    resolve_result_cache,
    ResultCache,
)
from repro.runtime.cache import point_cache_key
from repro.topology.registry import small_topologies
from repro.transpiler.target import make_target


@pytest.fixture
def target():
    return make_target(small_topologies()["Corral1,1"], "siswap", name="Corral1,1-siswap")


@pytest.fixture
def record(target):
    return run_point("GHZ", 5, target, seed=1)


class TestPersistentResultCache:
    def test_round_trip_same_instance(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        cached = cache.get("key")
        assert cached is not record
        assert cached.as_dict() == record.as_dict()

    def test_second_instance_reads_from_disk(self, tmp_path, record):
        PersistentResultCache(tmp_path).put("key", record)
        fresh = PersistentResultCache(tmp_path)  # simulates a new process
        cached = fresh.get("key")
        assert cached is not None
        assert cached.as_dict() == record.as_dict()
        stats = fresh.stats()
        assert stats.disk_hits == 1
        assert stats.computed == 0

    def test_disk_hit_promotes_into_memory(self, tmp_path, record):
        PersistentResultCache(tmp_path).put("key", record)
        fresh = PersistentResultCache(tmp_path)
        fresh.get("key")
        assert fresh.get("key") is not None
        stats = fresh.stats()
        assert stats.hits == 1  # second lookup served by the LRU
        assert stats.disk_hits == 1

    def test_missing_key_counts_disk_miss(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        assert cache.get("absent") is None
        stats = cache.stats()
        assert stats.disk_misses == 1
        assert stats.hit_rate == 0.0

    def test_truncated_file_is_a_miss_not_a_crash(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("*.rpc")
        path.write_bytes(path.read_bytes()[:-7])
        fresh = PersistentResultCache(tmp_path)
        assert fresh.get("key") is None
        assert not path.exists()  # corrupt record removed so the slot heals

    def test_garbage_file_is_a_miss(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("*.rpc")
        path.write_bytes(b"not a cache record at all")
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_valid_header_corrupt_payload_is_a_miss(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (path,) = tmp_path.glob("*.rpc")
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip a payload byte; zlib/pickle must reject it
        path.write_bytes(bytes(blob))
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_unpicklable_record_degrades_to_memory_only(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", lambda: None)  # lambdas cannot pickle
        assert cache.disk_entries() == 0
        assert cache.get("key") is not None  # the LRU still serves it

    def test_clear_removes_disk_records(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        assert cache.disk_entries() == 1
        cache.clear()
        assert cache.disk_entries() == 0
        assert PersistentResultCache(tmp_path).get("key") is None

    def test_stale_temp_files_are_swept(self, tmp_path):
        import os

        stale = tmp_path / "deadbeef1234.tmp"
        stale.write_bytes(b"partial write of a crashed process")
        old = 1_000_000_000  # well past the staleness cutoff
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafecafe5678.tmp"
        fresh.write_bytes(b"a concurrent writer's live staging file")
        PersistentResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()

    def test_clear_also_removes_temp_files(self, tmp_path, record):
        cache = PersistentResultCache(tmp_path)
        cache.put("key", record)
        (tmp_path / "orphan.tmp").write_bytes(b"leftover")
        cache.clear()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_point_keys_digest_identically_across_processes(self, target):
        key = point_cache_key("GHZ", 5, target, 1, "dense", "sabre")
        assert key_digest(key) == key_digest(
            point_cache_key("GHZ", 5, target, 1, "dense", "sabre")
        )
        assert key_digest(key) != key_digest(
            point_cache_key("GHZ", 6, target, 1, "dense", "sabre")
        )

    def test_record_format_is_compressed_pickle(self, tmp_path, record):
        PersistentResultCache(tmp_path).put("key", record)
        (path,) = tmp_path.glob("*.rpc")
        blob = path.read_bytes()
        assert blob.startswith(b"RPRC1\n")
        payload = blob[len(b"RPRC1\n") + 8 :]
        restored = pickle.loads(zlib.decompress(payload))
        assert restored.as_dict() == record.as_dict()


class TestResolveResultCache:
    def test_no_cache_wins(self, tmp_path):
        assert resolve_result_cache(cache_dir=tmp_path, no_cache=True) is None

    def test_explicit_dir_builds_persistent_cache(self, tmp_path):
        cache = resolve_result_cache(cache_dir=tmp_path)
        assert isinstance(cache, PersistentResultCache)
        assert cache.cache_dir == tmp_path

    def test_env_dir_builds_persistent_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert cache_dir_from_env() == str(tmp_path)
        cache = resolve_result_cache()
        assert isinstance(cache, PersistentResultCache)

    def test_default_is_memory_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = resolve_result_cache()
        assert isinstance(cache, ResultCache)
        assert not isinstance(cache, PersistentResultCache)


class TestCliIntegration:
    def test_second_cli_invocation_transpiles_nothing(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["headline", "--sizes", "4", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "transpiled" in cold.err
        assert "0 disk hits" in cold.err

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert " 0 transpiled" in warm.err
