"""Garbage collection of the disk-backed result cache.

Policies: ``max_age_seconds`` evicts expired records, ``max_bytes`` evicts
oldest-first down to the budget.  Two invariants matter more than the
policies themselves: records written during the *current run* are never
evicted out from under the sweep that produced them, and a GC'd record
degrades to a clean miss (recompute-and-heal), never an error.

Records live inside packed segment files and carry their write time in
the frame header, so tests age records by patching ``time.time`` around
the write, not by backdating files.
"""

from __future__ import annotations

import time
from unittest.mock import patch

import pytest

from repro.cli import main
from repro.runtime import (
    CACHE_MAX_BYTES_ENV,
    PersistentResultCache,
    collect_garbage,
    max_bytes_from_env,
    resolve_result_cache,
    segment_stats,
)


def _fill(cache_dir, keys, payload="x" * 200, age_seconds=0.0):
    """Write records through a throwaway instance (a *previous* run).

    ``age_seconds`` backdates the frame mtimes, simulating records written
    that long ago.
    """
    with patch("time.time", return_value=time.time() - age_seconds):
        cache = PersistentResultCache(cache_dir)
        for key in keys:
            cache.put(key, {"key": key, "payload": payload})
        cache.close()


class TestAgePolicy:
    def test_expired_records_removed_fresh_kept(self, tmp_path):
        _fill(tmp_path, ["old"], age_seconds=7200)
        _fill(tmp_path, ["new"])
        report = collect_garbage(tmp_path, max_age_seconds=3600)
        assert report.removed == 1
        fresh = PersistentResultCache(tmp_path)
        assert fresh.get("old") is None
        assert fresh.get("new") is not None

    def test_no_policy_removes_nothing(self, tmp_path):
        _fill(tmp_path, ["a", "b"])
        report = collect_garbage(tmp_path)
        assert report.removed == 0
        assert report.kept == 2
        assert report.kept_bytes > 0


class TestSizePolicy:
    def test_evicts_oldest_first_down_to_budget(self, tmp_path):
        for index, key in enumerate(("first", "second", "third")):
            _fill(tmp_path, [key], age_seconds=300 - 100 * index)
        stats = segment_stats(tmp_path)
        assert stats.live_records == 3
        # One byte under the total forces exactly one eviction — and the
        # eviction order must pick the oldest record.
        report = collect_garbage(tmp_path, max_bytes=stats.live_bytes - 1)
        assert report.removed == 1
        fresh = PersistentResultCache(tmp_path)
        assert fresh.get("first") is None  # oldest evicted
        assert fresh.get("second") is not None
        assert fresh.get("third") is not None

    def test_zero_budget_clears_unprotected_directory(self, tmp_path):
        _fill(tmp_path, ["a", "b", "c"])
        report = collect_garbage(tmp_path, max_bytes=0)
        assert report.removed == 3
        assert report.kept == 0
        assert list(tmp_path.glob("seg-*.rps")) == []

    def test_missing_directory_is_harmless(self, tmp_path):
        report = collect_garbage(tmp_path / "never-created", max_bytes=0)
        assert report.scanned == 0 and report.removed == 0


class TestCurrentRunProtection:
    def test_gc_never_evicts_records_written_this_run(self, tmp_path):
        _fill(tmp_path, ["stale-1", "stale-2"], age_seconds=7200)
        cache = PersistentResultCache(tmp_path)
        cache.put("fresh", {"payload": "y" * 500})
        report = cache.gc(max_bytes=0, max_age_seconds=1)
        assert report.protected == 1
        assert report.removed == 2
        assert cache.get("stale-1") is None
        assert PersistentResultCache(tmp_path).get("fresh") is not None

    def test_constructor_policy_runs_gc_before_any_write(self, tmp_path):
        _fill(tmp_path, ["stale-1", "stale-2", "stale-3"])
        cache = PersistentResultCache(tmp_path, max_bytes=0)
        assert cache.disk_entries() == 0
        # ... and the bound instance still works normally afterwards.
        cache.put("fresh", {"value": 1})
        assert cache.disk_entries() == 1

    def test_worker_stored_records_are_protected_too(self, tmp_path):
        """A record persisted by a pool worker counts as written this run."""
        worker_twin = PersistentResultCache(tmp_path)
        worker_twin.put("worker-key", {"value": 7})  # the worker's disk write
        worker_twin.close()
        parent = PersistentResultCache(tmp_path)
        parent.put_local("worker-key", {"value": 7})  # the parent's absorb step
        report = parent.gc(max_bytes=0)
        assert report.protected == 1
        assert report.removed == 0
        assert PersistentResultCache(tmp_path).get("worker-key") == {"value": 7}

    def test_gcd_entry_is_a_miss_then_heals(self, tmp_path):
        writer = PersistentResultCache(tmp_path)
        writer.put("key", {"value": 41})
        writer.close()
        # A *different* run's GC may evict it (no protection across runs).
        collect_garbage(tmp_path, max_bytes=0)
        reader = PersistentResultCache(tmp_path)
        assert reader.get("key") is None  # clean miss, not an error
        stats = reader.stats()
        assert stats.disk_misses == 1
        reader.put("key", {"value": 42})  # recompute heals the slot
        assert PersistentResultCache(tmp_path).get("key") == {"value": 42}


class TestCompaction:
    def test_superseded_duplicates_are_dead_bytes_until_compaction(self, tmp_path):
        _fill(tmp_path, ["key"], payload="old" * 100, age_seconds=60)
        _fill(tmp_path, ["key"], payload="new" * 100)
        stats = segment_stats(tmp_path)
        assert stats.live_records == 1
        assert stats.dead_bytes > 0
        report = collect_garbage(tmp_path, compact=True)
        assert report.removed == 0
        assert report.segments_written >= 1
        after = segment_stats(tmp_path)
        assert after.dead_bytes == 0
        assert PersistentResultCache(tmp_path).get("key")["payload"] == "new" * 100

    def test_compaction_consolidates_many_segments(self, tmp_path):
        for key in ("a", "b", "c", "d"):
            _fill(tmp_path, [key])
        assert len(list(tmp_path.glob("seg-*.rps"))) == 4
        collect_garbage(tmp_path, compact=True)
        assert len(list(tmp_path.glob("seg-*.rps"))) == 1
        fresh = PersistentResultCache(tmp_path)
        assert all(fresh.get(key) is not None for key in ("a", "b", "c", "d"))


class TestResolutionAndEnv:
    def test_env_budget_applies_on_resolution(self, tmp_path, monkeypatch):
        _fill(tmp_path, ["a", "b"], age_seconds=60)
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        assert max_bytes_from_env() == 0
        cache = resolve_result_cache(cache_dir=tmp_path)
        assert cache.disk_entries() == 0

    def test_invalid_env_budget_ignored_with_warning(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        with pytest.warns(RuntimeWarning):
            assert max_bytes_from_env() is None


class TestCliCacheCommands:
    def test_cache_gc_verb(self, tmp_path, capsys):
        _fill(tmp_path, ["a", "b"], age_seconds=7200)
        code = main(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--max-age-hours", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 2/2 records" in out
        assert list(tmp_path.glob("seg-*.rps")) == []

    def test_cache_gc_without_policy_compacts(self, tmp_path, capsys):
        for key in ("a", "b"):
            _fill(tmp_path, [key])
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 segments into 1" in out
        assert len(list(tmp_path.glob("seg-*.rps"))) == 1

    def test_cache_info_verb(self, tmp_path, capsys):
        _fill(tmp_path, ["a", "b", "c"])
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "live records: 3" in out
        assert "segments: 1" in out

    def test_cache_info_is_read_only(self, tmp_path):
        """Inspection must not unlink even hour-stale writer staging files."""
        _fill(tmp_path, ["a"])
        staging = tmp_path / "deadbeef0000.tmp"
        staging.write_bytes(b"slow writer's live staging file")
        before = sorted(path.name for path in tmp_path.iterdir())
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert staging.exists()
        assert sorted(path.name for path in tmp_path.iterdir()) == before

    def test_cache_gc_requires_a_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--max-bytes", "0"])
