"""Pool workers sharing one disk-backed result cache directory.

PR 4 left workers blind to the persistent cache: only the parent process
consulted it, so a parallel run re-transpiled everything a previous run
had already paid for unless the parent pre-served it.  These tests pin the
closed loop: the cache dir is plumbed into every worker (pool
initializer), workers consult *and* populate the shared tier directly,
concurrent writers never corrupt or lose records, and the parent's
:class:`~repro.linalg.cache.CacheStats` stays internally consistent
(``hits + misses`` lookups, ``computed == misses - disk_hits``).

The stress test tolerates sandboxes without process pools: the runner's
serial twin consults the same disk tier, so every assertion below holds
either way (a RuntimeWarning marks the fallback).
"""

from __future__ import annotations

import multiprocessing
import warnings

from repro.runtime import ExperimentRunner, PersistentResultCache
from repro.runtime.runner import _call_with_worker_cache, _init_worker_cache


def _weigh(token: str, repeats: int):
    """Cheap deterministic task: value depends only on the arguments."""
    return {"token": token, "weight": sum(ord(ch) for ch in token) * repeats}


def _run_hammer(cache_dir, tasks, keys, max_workers=4):
    runner = ExperimentRunner(
        parallel=True,
        max_workers=max_workers,
        result_cache=PersistentResultCache(cache_dir),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with runner:
            results = runner.map(_weigh, tasks, keys=keys)
    return results, runner.result_cache


class TestWorkerSharedCache:
    def _grid(self, copies):
        """``copies`` interleaved repetitions of 8 unique points."""
        unique = [(f"point-{i}", i + 1) for i in range(8)]
        tasks = unique * copies
        keys = [("weigh", token, repeats) for token, repeats in tasks]
        return tasks, keys, unique

    def test_concurrent_writers_no_lost_or_corrupt_records(self, tmp_path):
        tasks, keys, unique = self._grid(copies=3)
        results, cache = _run_hammer(tmp_path, tasks, keys)
        assert results == [_weigh(*task) for task in tasks]
        # No lost writes: every unique point has a record file on disk.
        assert cache.disk_entries() == len(unique)
        # No corrupt records: a fresh instance (a "new process") reads all.
        fresh = PersistentResultCache(tmp_path)
        for key, task in zip(keys[: len(unique)], tasks[: len(unique)]):
            assert fresh.get(key) == _weigh(*task)

    def test_cache_stats_sum_consistently(self, tmp_path):
        tasks, keys, _ = self._grid(copies=3)
        _, cache = _run_hammer(tmp_path, tasks, keys)
        stats = cache.stats()
        assert stats.hits + stats.misses == len(tasks)
        assert stats.computed == stats.misses - stats.disk_hits
        assert stats.hits + stats.disk_hits + stats.computed == len(tasks)
        assert stats.computed >= 1  # somebody did the cold work

    def test_parallel_warm_rerun_computes_nothing(self, tmp_path):
        tasks, keys, unique = self._grid(copies=1)
        _run_hammer(tmp_path, tasks, keys)
        # A fresh runner over the same directory models a rerun: its memory
        # LRU starts empty, so every point must come off the shared disk
        # tier (through the workers), not be recomputed.
        results, cache = _run_hammer(tmp_path, tasks, keys)
        assert results == [_weigh(*task) for task in tasks]
        stats = cache.stats()
        assert stats.computed == 0
        assert stats.disk_hits == len(unique)

    def test_second_map_in_same_runner_hits_parent_memory(self, tmp_path):
        tasks, keys, _ = self._grid(copies=1)
        runner = ExperimentRunner(
            parallel=True,
            max_workers=4,
            result_cache=PersistentResultCache(tmp_path),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with runner:
                runner.map(_weigh, tasks, keys=keys)
                before = runner.result_cache.stats()
                runner.map(_weigh, tasks, keys=keys)
        after = runner.result_cache.stats()
        # The first map warmed the parent LRU (promotion of worker results),
        # so the repeat is pure memory hits: no new misses, nothing computed.
        assert after.hits == before.hits + len(tasks)
        assert after.misses == before.misses
        assert after.computed == before.computed

    def test_serial_runner_unchanged_by_sharing_machinery(self, tmp_path):
        """A serial runner must keep the PR-4 parent-side disk behaviour."""
        tasks, keys, unique = self._grid(copies=1)
        runner = ExperimentRunner(
            parallel=False, result_cache=PersistentResultCache(tmp_path)
        )
        first = runner.map(_weigh, tasks, keys=keys)
        rerun_cache = PersistentResultCache(tmp_path)
        rerun = ExperimentRunner(parallel=False, result_cache=rerun_cache)
        assert rerun.map(_weigh, tasks, keys=keys) == first
        stats = rerun_cache.stats()
        assert stats.computed == 0
        assert stats.disk_hits == len(unique)


def _append_records(cache_dir: str, worker_id: int, count: int, barrier) -> None:
    """One writer process: append ``count`` records through its own handle."""
    cache = PersistentResultCache(cache_dir, segment_max_bytes=4096)
    barrier.wait()  # maximize overlap between the writers
    for index in range(count):
        cache.put(("stress", worker_id, index), {"worker": worker_id, "index": index})
    cache.close()


class TestConcurrentSegmentAppend:
    """Many processes appending packed segments to one directory at once."""

    WRITERS = 4
    RECORDS = 25

    def _hammer(self, tmp_path):
        context = multiprocessing.get_context()
        barrier = context.Barrier(self.WRITERS)
        processes = [
            context.Process(
                target=_append_records,
                args=(str(tmp_path), worker_id, self.RECORDS, barrier),
            )
            for worker_id in range(self.WRITERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

    def test_no_lost_or_corrupt_records_across_processes(self, tmp_path):
        self._hammer(tmp_path)
        reader = PersistentResultCache(tmp_path)
        for worker_id in range(self.WRITERS):
            for index in range(self.RECORDS):
                assert reader.probe_disk(("stress", worker_id, index)) == (
                    {"worker": worker_id, "index": index}
                )
        assert reader.disk_entries() == self.WRITERS * self.RECORDS

    def test_compaction_after_the_stampede_keeps_everything(self, tmp_path):
        self._hammer(tmp_path)
        cache = PersistentResultCache(tmp_path)
        report = cache.gc(compact=True)
        assert report.kept == self.WRITERS * self.RECORDS
        fresh = PersistentResultCache(tmp_path)
        for worker_id in range(self.WRITERS):
            for index in range(self.RECORDS):
                assert fresh.probe_disk(("stress", worker_id, index)) is not None


class TestWorkerCacheInternals:
    def test_initializer_and_wrapper_round_trip(self, tmp_path):
        """The worker-side path, driven in-process for determinism."""
        import repro.runtime.runner as runner_module

        _init_worker_cache({"cache_dir": str(tmp_path), "maxsize": 64})
        try:
            outcome, value = _call_with_worker_cache(_weigh, ("k", 1), ("token", 2))
            assert (outcome, value) == ("stored", _weigh("token", 2))
            outcome, value = _call_with_worker_cache(_weigh, ("k", 1), ("token", 2))
            assert (outcome, value) == ("shared", _weigh("token", 2))
        finally:
            runner_module._WORKER_CACHE = None

    def test_wrapper_without_cache_reports_computed(self):
        import repro.runtime.runner as runner_module

        assert runner_module._WORKER_CACHE is None
        outcome, value = _call_with_worker_cache(_weigh, ("k", 2), ("token", 3))
        assert (outcome, value) == ("computed", _weigh("token", 3))

    def test_worker_spec_never_carries_gc_policy(self, tmp_path):
        cache = PersistentResultCache(
            tmp_path, maxsize=32, max_bytes=10_000, segment_max_bytes=1 << 20
        )
        spec = cache.worker_spec()
        assert spec == {
            "cache_dir": str(tmp_path),
            "maxsize": 32,
            "segment_max_bytes": 1 << 20,
        }

    def test_note_worker_hit_promotes_and_counts(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.peek_memory("key")  # one memory miss, as before dispatch
        cache.note_worker_hit("key", {"value": 1})
        stats = cache.stats()
        assert stats.disk_hits == 1
        assert stats.computed == 0
        assert cache.peek_memory("key") == {"value": 1}  # promoted into LRU
