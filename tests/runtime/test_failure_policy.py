"""Chaos tests: the runner survives crashing, raising and hanging workers.

Every test drives a real process pool through
:class:`~repro.runtime.runner.ExperimentRunner` with a deterministic
:class:`~repro.runtime.faults.FaultPlan`, under both ``fork`` and
``spawn`` start methods (the two fail differently: ``fork`` workers
inherit state, ``spawn`` workers re-import and re-run initializers).
The assertions pin the recovery contract of the fault-tolerant
execution layer:

* a worker SIGKILL/``os._exit`` mid-map rebuilds the pool and
  re-dispatches only the unfinished tasks (finished results survive);
* a transiently raising task is retried with backoff and succeeds;
* a task that kills every pool it touches is quarantined via an
  isolated probe — its slot is ``None``, everything else completes,
  and :class:`~repro.runtime.runner.FaultStats` names it;
* a hanging task trips the per-task timeout and is recovered;
* a worker whose shared cache cannot open degrades loudly, not
  silently.
"""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

import repro.runtime.runner as runner_module
from repro.runtime import (
    ExperimentRunner,
    FailurePolicy,
    FaultPlan,
    PersistentResultCache,
    PoisonTaskError,
)

pytestmark = pytest.mark.chaos

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _double(value: int) -> int:
    return value * 2


def _runner(start_method, plan, **policy):
    return ExperimentRunner(
        parallel=True,
        max_workers=2,
        failure_policy=FailurePolicy(**policy),
        fault_plan=FaultPlan.parse(plan),
        start_method=start_method,
    )


@pytest.mark.parametrize("start_method", START_METHODS)
class TestCrashRecovery:
    def test_crash_mid_map_rebuilds_and_redispatches(self, tmp_path, start_method):
        with _runner(start_method, f"crash@2;state={tmp_path}") as runner:
            results = runner.map(_double, [(i,) for i in range(8)])
        assert results == [i * 2 for i in range(8)]
        assert runner.fault_stats.pool_rebuilds >= 1
        assert not runner.fault_stats.quarantined

    def test_live_pool_survives_for_the_next_map(self, tmp_path, start_method):
        with _runner(start_method, f"crash@1;state={tmp_path}") as runner:
            first = runner.map(_double, [(i,) for i in range(4)])
            assert runner.ensure_pool()
            second = runner.map(_double, [(i,) for i in range(4, 8)])
        assert first == [0, 2, 4, 6]
        assert second == [8, 10, 12, 14]

    def test_transient_raise_is_retried(self, tmp_path, start_method):
        with _runner(
            start_method, f"raise@1;state={tmp_path}", max_retries=2
        ) as runner:
            results = runner.map(_double, [(i,) for i in range(4)])
        assert results == [0, 2, 4, 6]
        assert runner.fault_stats.retries == 1

    def test_poison_task_is_quarantined_and_named(self, start_method):
        with _runner(
            start_method, "crash@1x*", max_pool_rebuilds=1
        ) as runner:
            results = runner.map(
                _double,
                [(i,) for i in range(4)],
                labels=[f"pt{i}" for i in range(4)],
            )
        assert results == [0, None, 4, 6]
        assert len(runner.fault_stats.quarantined) == 1
        assert runner.fault_stats.quarantined[0].startswith("pt1")
        assert "pt1" in runner.fault_stats.describe()

    def test_on_poison_raise_propagates(self, start_method):
        with _runner(
            start_method, "crash@0x*", max_pool_rebuilds=1, on_poison="raise"
        ) as runner:
            with pytest.raises(PoisonTaskError) as excinfo:
                runner.map(_double, [(i,) for i in range(3)], labels=["a", "b", "c"])
        assert excinfo.value.label == "a"

    def test_hang_trips_the_task_timeout(self, tmp_path, start_method):
        with _runner(
            start_method,
            f"hang@1=30;state={tmp_path}",
            task_timeout=1.0,
            max_retries=1,
        ) as runner:
            results = runner.map(_double, [(i,) for i in range(4)])
        assert results == [0, 2, 4, 6]
        assert runner.fault_stats.timeouts >= 1


class TestUncachedWorkerDegradation:
    def test_failed_worker_cache_init_tags_results(self):
        """The worker-side seam: a broken cache yields ``uncached`` tags."""
        saved = (runner_module._WORKER_CACHE, runner_module._WORKER_CACHE_FAILED)
        try:
            runner_module._init_worker_cache({"cache_dir": "/dev/null/nope"})
            assert runner_module._WORKER_CACHE is None
            assert runner_module._WORKER_CACHE_FAILED is True
            tag, value = runner_module._call_with_worker_cache(_double, ("k",), (21,))
            assert (tag, value) == (runner_module.TASK_UNCACHED, 42)
        finally:
            runner_module._WORKER_CACHE, runner_module._WORKER_CACHE_FAILED = saved

    def test_parent_warns_once_and_persists(self, tmp_path):
        """The parent-side seam: one RuntimeWarning, counted, value cached."""
        cache = PersistentResultCache(tmp_path)
        runner = ExperimentRunner(parallel=False, result_cache=cache)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runner._note_uncached_worker()
            runner._note_uncached_worker()
        messages = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(messages) == 1
        assert "cache coverage is degraded" in str(messages[0].message)
        assert runner.fault_stats.uncached_tasks == 2
        cache.close()
