"""Unit tests for the deterministic fault-injection harness.

:mod:`repro.runtime.faults` is the seam every chaos test stands on, so
its own semantics are pinned here without any process pools: plan
parsing round-trips, ``scatter`` is seed-stable, claims are exactly-once
(both in-process and through a cross-process ``state_dir``), and
:func:`write_corrupt_frame` produces damage the cache verifier sees.
"""

from __future__ import annotations

import pytest

from repro.runtime.disk_cache import PersistentResultCache, verify_cache
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    write_corrupt_frame,
)


class TestFaultPlanParsing:
    def test_single_entry(self):
        plan = FaultPlan.parse("crash@3")
        assert plan is not None
        assert plan.specs == (FaultSpec(mode="crash", index=3),)

    def test_full_grammar_round_trips(self):
        text = "crash@1;raise@2x3;hang@4=0.5;corrupt@5x*"
        plan = FaultPlan.parse(text)
        assert plan.spec == text
        assert FaultPlan.parse(plan.spec) == plan

    def test_state_dir_round_trips(self, tmp_path):
        plan = FaultPlan.parse(f"crash@0;state={tmp_path}")
        assert plan.state_dir == tmp_path
        assert FaultPlan.parse(plan.spec) == plan

    def test_blank_and_none_parse_to_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None

    @pytest.mark.parametrize(
        "bad", ["explode@1", "crash@", "crash@-1", "crash@1x0x2", "crash"]
    )
    def test_bad_entries_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise@7")
        plan = FaultPlan.from_env()
        assert plan.faults_for(7)

    def test_scatter_is_deterministic_and_rate_bounded(self):
        first = FaultPlan.scatter(1000, rate=0.05, seed=42)
        again = FaultPlan.scatter(1000, rate=0.05, seed=42)
        other = FaultPlan.scatter(1000, rate=0.05, seed=43)
        assert first == again
        assert first != other
        assert 10 <= len(first.specs) <= 120  # ~50 expected; loose bounds

    def test_scatter_zero_rate_is_empty(self):
        assert not FaultPlan.scatter(100, rate=0.0, seed=1)


class TestFaultInjector:
    def test_raise_fires_exactly_count_times(self):
        injector = FaultInjector(FaultPlan.parse("raise@2x2"))
        injector.fire(0)
        injector.fire(1)
        with pytest.raises(InjectedFault):
            injector.fire(2)
        with pytest.raises(InjectedFault):
            injector.fire(2)
        assert injector.fire(2) is False  # count exhausted

    def test_unbounded_count_always_fires(self):
        injector = FaultInjector(FaultPlan.parse("raise@0x*"))
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.fire(0)

    def test_corrupt_mode_returns_true(self):
        injector = FaultInjector(FaultPlan.parse("corrupt@1"))
        assert injector.fire(1) is True
        assert injector.fire(1) is False  # one-shot

    def test_state_dir_claims_are_shared_across_injectors(self, tmp_path):
        plan = FaultPlan.parse(f"raise@0;state={tmp_path}")
        first = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            first.fire(0)
        # A "fresh worker" (new injector, same state dir) must not refire.
        second = FaultInjector(plan)
        assert second.fire(0) is False

    def test_hang_uses_param_as_duration(self):
        import time

        injector = FaultInjector(FaultPlan.parse("hang@0=0.05"))
        start = time.perf_counter()
        injector.fire(0)
        assert time.perf_counter() - start >= 0.05


class TestWriteCorruptFrame:
    def test_verifier_sees_the_damage_and_repair_drops_it(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        for index in range(3):
            cache.put(("point", index), {"value": index})
        cache.close()
        assert verify_cache(tmp_path).clean

        path = write_corrupt_frame(tmp_path, ("point", 99))
        assert path.exists()
        report = verify_cache(tmp_path)
        assert not report.clean
        assert report.frames_corrupt == 1

        repaired = verify_cache(tmp_path, repair=True)
        assert repaired.dropped_frames == 1
        assert verify_cache(tmp_path).clean
        # The healthy records survived the repair.
        fresh = PersistentResultCache(tmp_path)
        assert fresh.get(("point", 1)) == {"value": 1}
        fresh.close()
