"""Tests for the experiment runner: ordering, parallel parity, caching."""

from __future__ import annotations

import warnings

import pytest

from repro.core.backend import make_backend
from repro.core.pipeline import run_sweep, sweep_grid
from repro.core.statistics import seed_sweep
from repro.experiments.sensitivity_study import figure15_study
from repro.experiments.swap_study import swap_study
from repro.runtime import (
    ExperimentRunner,
    ResultCache,
    point_cache_key,
    point_seed,
    serial_runner,
)
from repro.topology.registry import small_topologies


def _square(value):
    return value * value


def _spaced(value):
    return f"<{value}>"


def _raise_missing_file(value):
    raise FileNotFoundError(f"missing {value}")


class TestRunnerMap:
    def test_serial_map_preserves_order(self):
        runner = serial_runner()
        assert runner.map(_square, [(3,), (1,), (2,)]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        serial = serial_runner().map(_square, [(n,) for n in range(8)])
        parallel = ExperimentRunner(parallel=True, max_workers=2).map(
            _square, [(n,) for n in range(8)]
        )
        assert parallel == serial

    def test_progress_labels_are_reported(self):
        seen = []
        runner = ExperimentRunner(parallel=False, progress=seen.append)
        runner.map(_spaced, [(1,), (2,)], labels=["one", "two"])
        assert seen == ["one", "two"]

    def test_misaligned_keys_rejected(self):
        with pytest.raises(ValueError):
            serial_runner(result_cache=ResultCache()).map(
                _square, [(1,), (2,)], keys=["only-one"]
            )

    def test_cache_short_circuits_repeated_tasks(self):
        cache = ResultCache()
        runner = ExperimentRunner(parallel=False, result_cache=cache)
        first = runner.map(_square, [(2,), (3,)], keys=["a", "b"])
        second = runner.map(_square, [(2,), (3,)], keys=["a", "b"])
        assert first == second == [4, 9]
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses >= 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(max_workers=0)

    def test_task_raised_oserror_propagates_from_pool(self):
        # An OSError subclass raised *by the task* must surface unchanged —
        # it is not a pool failure and must not trigger the serial fallback
        # (which would silently rerun the whole batch).
        runner = ExperimentRunner(parallel=True, max_workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(FileNotFoundError, match="missing 1"):
                runner.map(_raise_missing_file, [(1,), (2,)])

    def test_non_integer_workers_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            runner = ExperimentRunner()
        assert runner.max_workers >= 1

    def test_pool_is_reused_across_map_calls(self):
        with ExperimentRunner(parallel=True, max_workers=2) as runner:
            assert runner.map(_square, [(1,), (2,)]) == [1, 4]
            pool = runner._pool
            assert pool is not None
            assert runner.map(_square, [(3,), (4,)]) == [9, 16]
            assert runner._pool is pool
            runner.close()
            assert runner._pool is None
            # Still usable after close: a fresh pool is started on demand.
            assert runner.map(_square, [(5,), (6,)]) == [25, 36]


class TestPointSeed:
    def test_deterministic_and_distinct(self):
        assert point_seed(7, "GHZ", 12) == point_seed(7, "GHZ", 12)
        assert point_seed(7, "GHZ", 12) != point_seed(7, "GHZ", 13)
        assert point_seed(7, "GHZ", 12) != point_seed(8, "GHZ", 12)

    def test_fits_in_31_bits(self):
        for base in (0, 1, 2**31, 12345):
            assert 0 <= point_seed(base, "x") < 2**31


@pytest.fixture(scope="module")
def small_backends():
    registry = small_topologies()
    return [
        make_backend(registry["Corral1,1"], "siswap", name="Corral1,1-siswap"),
        make_backend(registry["Hypercube"], "cx", name="Hypercube-cx"),
    ]


class TestSweepParity:
    def test_sweep_grid_skips_oversized_points(self, small_backends):
        grid = sweep_grid(["GHZ"], [5, 64], small_backends)
        assert all(size <= backend.num_qubits for _, size, backend in grid)

    def test_parallel_sweep_bit_identical(self, small_backends):
        serial = run_sweep(["GHZ", "QFT"], [5, 7], small_backends, seed=3)
        runner = ExperimentRunner(parallel=True, max_workers=2)
        parallel = run_sweep(["GHZ", "QFT"], [5, 7], small_backends, seed=3, runner=runner)
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]

    def test_cached_sweep_bit_identical(self, small_backends):
        runner = ExperimentRunner(parallel=False, result_cache=ResultCache())
        cold = run_sweep(["GHZ"], [5, 6], small_backends, seed=3, runner=runner)
        warm = run_sweep(["GHZ"], [5, 6], small_backends, seed=3, runner=runner)
        assert [r.as_dict() for r in cold] == [r.as_dict() for r in warm]
        assert runner.result_cache.stats().hits == len(warm)

    def test_swap_study_parallel_parity(self):
        topologies = ["Corral1,1", "Hypercube"]
        serial = swap_study("small", topologies, workloads=["GHZ"], sizes=[5, 6])
        parallel = swap_study(
            "small",
            topologies,
            workloads=["GHZ"],
            sizes=[5, 6],
            runner=ExperimentRunner(parallel=True, max_workers=2),
        )
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]

    def test_seed_sweep_parallel_parity(self, small_backends):
        backend = small_backends[0]
        serial = seed_sweep("GHZ", 6, backend, seeds=(1, 2, 3))
        parallel = seed_sweep(
            "GHZ",
            6,
            backend,
            seeds=(1, 2, 3),
            runner=ExperimentRunner(parallel=True, max_workers=2),
        )
        assert serial == parallel


class TestSensitivityParity:
    @pytest.mark.slow
    def test_sensitivity_parallel_parity(self):
        kwargs = dict(roots=(2, 3), num_targets=2, k_values=(2, 3), seed=9)
        serial = figure15_study(**kwargs)
        parallel = figure15_study(
            **kwargs, runner=ExperimentRunner(parallel=True, max_workers=2)
        )
        assert serial.root_results == parallel.root_results
        assert serial.total_fidelity == parallel.total_fidelity


class TestPointCacheKey:
    def test_distinct_backends_never_collide(self, small_backends):
        first, second = small_backends
        key_a = point_cache_key("GHZ", 5, first, 0, "dense", "sabre")
        key_b = point_cache_key("GHZ", 5, second, 0, "dense", "sabre")
        assert key_a != key_b

    def test_key_is_stable(self, small_backends):
        backend = small_backends[0]
        assert point_cache_key("GHZ", 5, backend, 0, "dense", "sabre") == point_cache_key(
            "GHZ", 5, backend, 0, "dense", "sabre"
        )
