"""Shared read-only arrays: registry, worker attachment, fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import ExperimentRunner
from repro.runtime.shared import (
    SharedArraySpec,
    get_shared_array,
    register_shared_arrays,
    share_arrays,
    shared_array_names,
)


def _sum_shared(name: str, row: int) -> float:
    """Task function: fold one row of a shared array (runs in workers)."""
    return float(get_shared_array(name)[row].sum())


class TestRegistry:
    def test_parent_serves_its_own_copy(self):
        matrix = np.arange(12, dtype=np.float64).reshape(3, 4)
        bundle = share_arrays({"parent-copy": matrix})
        try:
            view = get_shared_array("parent-copy")
            assert np.array_equal(view, matrix)
            assert not view.flags.writeable
            assert "parent-copy" in shared_array_names()
        finally:
            bundle.close()

    def test_unknown_name_raises_key_error(self):
        with pytest.raises(KeyError):
            get_shared_array("never-published")

    def test_payload_fallback_spec_roundtrips(self):
        import pickle

        matrix = np.eye(5)
        spec = SharedArraySpec(
            name="pickled-only",
            shape=matrix.shape,
            dtype=str(matrix.dtype),
            payload=pickle.dumps(matrix),
        )
        register_shared_arrays([spec])
        view = get_shared_array("pickled-only")
        assert np.array_equal(view, matrix)
        assert not view.flags.writeable

    def test_attachment_survives_after_bundle_close_via_payload(self):
        """A worker attaching after the parent unlinked falls back cleanly."""
        import pickle

        matrix = np.ones((4, 4))
        bundle = share_arrays({"short-lived": matrix})
        (spec,) = bundle.specs
        bundle.close()  # unlink before any attachment
        degraded = SharedArraySpec(
            name="short-lived-degraded",
            shape=spec.shape,
            dtype=spec.dtype,
            block=spec.block,  # now dangling
            payload=pickle.dumps(matrix),
        )
        register_shared_arrays([degraded])
        assert np.array_equal(get_shared_array("short-lived-degraded"), matrix)


class TestRunnerIntegration:
    def test_workers_read_shared_arrays(self):
        matrix = np.arange(20, dtype=np.float64).reshape(4, 5)
        runner = ExperimentRunner(parallel=True, max_workers=2)
        try:
            runner.share_arrays({"distances": matrix})
            results = runner.map(
                _sum_shared, [("distances", row) for row in range(4)]
            )
            assert results == [float(matrix[row].sum()) for row in range(4)]
        finally:
            runner.close()

    def test_share_arrays_discards_a_running_pool(self):
        runner = ExperimentRunner(parallel=True, max_workers=2)
        try:
            runner.map(_sum_shared_noop, [(1,), (2,)])
            assert runner.pool_alive
            runner.share_arrays({"late": np.zeros(3)})
            assert not runner.pool_alive  # next map starts a seeded pool
            results = runner.map(_sum_shared, [("late", 0)])
            assert results == [0.0]
        finally:
            runner.close()

    def test_serial_runner_serves_shared_arrays_too(self):
        matrix = np.full((2, 2), 7.0)
        runner = ExperimentRunner(parallel=False, max_workers=1)
        try:
            runner.share_arrays({"serial": matrix})
            assert runner.map(_sum_shared, [("serial", 1)]) == [14.0]
        finally:
            runner.close()

    def test_close_releases_the_bundle(self):
        runner = ExperimentRunner(parallel=False, max_workers=1)
        runner.share_arrays({"released": np.zeros(2)})
        bundle = runner._shared_arrays
        runner.close()
        assert runner._shared_arrays is None
        assert bundle._blocks == []


def _sum_shared_noop(value: int) -> int:
    """Trivial pool-warming task."""
    return value
