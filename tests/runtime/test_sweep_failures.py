"""Failure-aware sweeps: quarantined points are recorded and retried.

The acceptance scenario of the fault-tolerant execution layer: under an
injected always-crash fault one sweep point is quarantined while the
rest of its shard completes; the failed point lands in
``failures.json`` with its shard, label and reason; and a ``--resume``
run retries *exactly* the recorded failures — producing a result
identical, record for record, to a never-faulted sweep.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.pipeline import run_sweep, run_sweep_sharded
from repro.runtime import ExperimentRunner, FailurePolicy, FaultPlan
from repro.runtime.checkpoint import SweepCheckpoint
from repro.transpiler.target import Target

pytestmark = pytest.mark.chaos


def _target() -> Target:
    return Target.from_names(
        "Corral1,1", "siswap", scale="small", name="Corral1,1-siswap"
    )


def _poisoned_runner() -> ExperimentRunner:
    """A parallel runner whose second dispatched task always crashes."""
    return ExperimentRunner(
        parallel=True,
        max_workers=2,
        failure_policy=FailurePolicy(max_pool_rebuilds=1),
        fault_plan=FaultPlan.parse("crash@1x*"),
    )


def _poisoned_sweep(checkpoint_dir, statuses=None):
    runner = _poisoned_runner()
    try:
        result = run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [_target()],
            checkpoint_dir,
            shard_points=3,
            shard_progress=(
                None
                if statuses is None
                else lambda i, n, s, k: statuses.setdefault(i, s)
            ),
            runner=runner,
        )
    finally:
        runner.close()
    return result, runner


class TestFailureRecording:
    def test_quarantined_point_is_recorded_not_fatal(self, tmp_path):
        result, runner = _poisoned_sweep(tmp_path / "ckpt")
        # The other points of the shard completed.
        assert len(result) == 2
        assert len(result.failed_points) == 1
        entry = result.failed_points[0]
        assert entry["point"] == 1
        assert entry["label"] == "GHZ-5 on Corral1,1-siswap"
        assert runner.fault_stats.quarantined

    def test_failures_json_names_shard_label_and_reason(self, tmp_path):
        _poisoned_sweep(tmp_path / "ckpt")
        failed = SweepCheckpoint(tmp_path / "ckpt").failed_points()
        assert list(failed) == [1]
        assert failed[1]["shard"] == 0
        assert failed[1]["label"] == "GHZ-5 on Corral1,1-siswap"
        assert "quarantined" in failed[1]["reason"]

    def test_resume_retries_exactly_the_failed_points(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        _poisoned_sweep(checkpoint_dir)
        statuses = {}
        result = run_sweep_sharded(
            ["GHZ"],
            [4, 5, 6],
            [_target()],
            checkpoint_dir,
            shard_points=3,
            shard_progress=lambda i, n, s, k: statuses.setdefault(i, s),
        )
        # The shard holds two finished points; only the hole is recomputed.
        assert statuses == {0: "retried"}
        assert len(result) == 3
        assert not result.failed_points
        assert SweepCheckpoint(checkpoint_dir).failed_points() == {}
        direct = run_sweep(["GHZ"], [4, 5, 6], [_target()])
        assert [r.as_dict() for r in result.records] == [
            r.as_dict() for r in direct.records
        ]

    def test_recovered_failures_are_cleared_from_disk(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        _poisoned_sweep(checkpoint_dir)
        checkpoint = SweepCheckpoint(checkpoint_dir)
        assert checkpoint.failed_points()
        run_sweep_sharded(
            ["GHZ"], [4, 5, 6], [_target()], checkpoint_dir, shard_points=3
        )
        assert checkpoint.failed_points() == {}
        # The file itself is gone once every failure is recovered.
        assert not (checkpoint_dir / "failures.json").exists()


class TestFailureCli:
    def test_cli_reports_and_resume_retries(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        args = [
            "sweep",
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--shard-points",
            "3",
            "--workloads",
            "GHZ",
            "--sizes",
            "4",
            "5",
            "6",
            "--topologies",
            "Corral1,1",
            "--parallel",
            "--workers",
            "2",
        ]
        exit_code = main(args + ["--inject-faults", "crash@1x*"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "failed points (quarantined): GHZ-5 on Corral1,1-siswap" in captured.out
        assert "rerun with --resume" in captured.out
        assert "quarantined: GHZ-5 on Corral1,1-siswap" in captured.err

        exit_code = main(args + ["--resume"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "shard 1/1: retried (3 points)" in captured.err
        assert "sweep complete: 3 points" in captured.out
        assert "failed" not in captured.out
