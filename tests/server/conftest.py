"""Fixtures for the compilation-server suite: live servers on ephemeral ports."""

from __future__ import annotations

import pytest

from repro.server import ServeClient, ServerHandle


@pytest.fixture(autouse=True)
def _isolated_server_env(monkeypatch):
    """Keep ambient cache/auth environment out of server construction."""
    monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)


@pytest.fixture
def live_server(tmp_path):
    """A serial-runner server on an ephemeral port with a tmp cache dir."""
    with ServerHandle(
        port=0, parallel=False, cache_dir=str(tmp_path / "serve-cache")
    ) as handle:
        yield handle


@pytest.fixture
def client(live_server):
    """A client bound to the live server."""
    return ServeClient(port=live_server.port, timeout=30.0)
