"""Bearer-token authentication: rejection, acceptance, health exemption."""

from __future__ import annotations

import pytest

from repro.server import ReproServer, ServeClient, ServeError, ServerHandle

pytestmark = pytest.mark.fast

TOKEN = "sekrit-token"


@pytest.fixture
def auth_server():
    with ServerHandle(port=0, parallel=False, no_cache=True, token=TOKEN) as handle:
        yield handle


def test_missing_token_is_401(auth_server):
    client = ServeClient(port=auth_server.port, timeout=10.0)
    with pytest.raises(ServeError) as excinfo:
        client.metrics()
    assert excinfo.value.status == 401
    with pytest.raises(ServeError) as excinfo:
        client.transpile({"workload": "GHZ", "size": 4})
    assert excinfo.value.status == 401


def test_wrong_token_is_401(auth_server):
    client = ServeClient(port=auth_server.port, token="wrong", timeout=10.0)
    with pytest.raises(ServeError) as excinfo:
        client.metrics()
    assert excinfo.value.status == 401


def test_health_is_exempt_from_auth(auth_server):
    client = ServeClient(port=auth_server.port, timeout=10.0)
    payload = client.health()
    assert payload["status"] == "ok"
    assert payload["auth"] is True


def test_correct_token_is_accepted(auth_server):
    client = ServeClient(port=auth_server.port, token=TOKEN, timeout=10.0)
    response = client.transpile({"workload": "GHZ", "size": 4})
    assert response["count"] == 1
    assert client.metrics()["responses"]["200"] >= 1


def test_token_defaults_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TOKEN", "from-env")
    server = ReproServer(parallel=False, no_cache=True)
    try:
        assert server.token == "from-env"
    finally:
        server.runner.close()


def test_empty_environment_token_disables_auth(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TOKEN", "")
    server = ReproServer(parallel=False, no_cache=True)
    try:
        assert server.token is None
    finally:
        server.runner.close()
