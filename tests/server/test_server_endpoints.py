"""Endpoint round-trips against a live server on an ephemeral port."""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_point
from repro.server import ServeClient, ServeError
from repro.transpiler.target import Target

pytestmark = pytest.mark.fast


def test_health_shape(client):
    payload = client.health()
    assert payload["status"] == "ok"
    assert payload["uptime_seconds"] >= 0
    assert payload["queue_depth"] == 0
    assert payload["queue_capacity"] >= 1
    assert payload["parallel"] is False
    assert payload["auth"] is False


def test_transpile_single_matches_direct_run_point(client):
    response = client.transpile({"workload": "GHZ", "size": 6})
    assert response["count"] == 1
    target = Target.from_names(
        "Corral1,1", "siswap", scale="small", name="Corral1,1-siswap"
    )
    expected = run_point("GHZ", 6, target).as_dict()
    assert response["results"][0] == expected


def test_transpile_batch_preserves_request_order(client):
    points = [
        {"workload": "GHZ", "size": 8},
        {"workload": "GHZ", "size": 4},
        {"workload": "GHZ", "size": 6},
    ]
    response = client.transpile(points)
    assert response["count"] == 3
    assert [r["circuit_qubits"] for r in response["results"]] == [8, 4, 6]
    assert response["cache"]["computed"] == 3


def test_transpile_warm_repeat_hits_memory(client):
    point = {"workload": "GHZ", "size": 5}
    cold = client.transpile(point)
    assert cold["cache"]["computed"] == 1
    warm = client.transpile(point)
    assert warm["cache"]["computed"] == 0
    assert warm["cache"]["hits"] == 1
    assert warm["results"] == cold["results"]


def test_metrics_counters_accumulate(client):
    client.transpile({"workload": "GHZ", "size": 4})
    client.health()
    metrics = client.metrics()
    assert metrics["requests"]["/v1/transpile"] == 1
    assert metrics["requests"]["/v1/health"] >= 1
    assert metrics["responses"]["200"] >= 2
    assert metrics["jobs"] == {"completed": 1, "failed": 0, "expired": 0}
    assert metrics["points_completed"] == 1
    cache = metrics["cache"]
    assert cache["computed"] == cache["misses"] - cache["disk_hits"]
    assert metrics["cache_dir"] is not None


def test_unknown_path_is_404(client):
    with pytest.raises(ServeError) as excinfo:
        client.request("GET", "/v1/nope")
    assert excinfo.value.status == 404


def test_wrong_method_is_405(client):
    with pytest.raises(ServeError) as excinfo:
        client.request("POST", "/v1/health")
    assert excinfo.value.status == 405
    with pytest.raises(ServeError) as excinfo:
        client.request("GET", "/v1/transpile")
    assert excinfo.value.status == 405


@pytest.mark.parametrize(
    "payload",
    [
        {"workload": "NotAWorkload", "size": 4},
        {"workload": "GHZ"},
        {"workload": "GHZ", "size": 4, "level": 99},
        {"workload": "GHZ", "size": 4, "routing": "not-a-pass"},
        {"workload": "GHZ", "size": 4, "bogus": 1},
        {"workload": "GHZ", "size": 4, "topology": "NotATopology"},
    ],
)
def test_invalid_point_is_400(client, payload):
    with pytest.raises(ServeError) as excinfo:
        client.transpile(payload)
    assert excinfo.value.status == 400
    assert "error" in excinfo.value.payload


def test_malformed_json_is_400(live_server):
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", live_server.port, timeout=10)
    connection.request(
        "POST",
        "/v1/transpile",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    assert response.status == 400
    response.close()


def test_client_wait_until_ready_times_out_on_dead_port():
    client = ServeClient(port=1, timeout=0.2)
    assert client.wait_until_ready(timeout=0.3, interval=0.05) is False
