"""Unit tests for the request-to-work layer (no live server needed)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import sweep_grid
from repro.server.jobs import (
    MAX_POINTS_PER_REQUEST,
    PointSpec,
    RequestError,
    parse_sweep_request,
    parse_transpile_request,
    stats_delta,
)
from repro.transpiler.target import Target

pytestmark = pytest.mark.fast


def test_point_spec_defaults():
    spec = PointSpec.from_payload({"workload": "GHZ", "size": 6})
    assert spec.topology == "Corral1,1"
    assert spec.basis == "siswap"
    assert spec.scale == "small"
    assert spec.optimization_level == 1
    assert spec.layout is None and spec.routing is None
    assert spec.seed == 0


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ("not a dict", "JSON object"),
        ({"size": 4}, "missing 'workload'"),
        ({"workload": "GHZ"}, "missing 'size'"),
        ({"workload": "Nope", "size": 4}, "unknown workload"),
        ({"workload": "GHZ", "size": 0}, "at least 1"),
        ({"workload": "GHZ", "size": True}, "must be an integer"),
        ({"workload": "GHZ", "size": 4, "level": 42}, "unknown optimization level"),
        ({"workload": "GHZ", "size": 4, "scale": "huge"}, "'scale' must be"),
        ({"workload": "GHZ", "size": 4, "layout": "nope"}, "unknown layout"),
        ({"workload": "GHZ", "size": 4, "routing": "nope"}, "unknown routing"),
        ({"workload": "GHZ", "size": 4, "mystery": 1}, "unknown point fields"),
    ],
)
def test_point_spec_rejects_bad_payloads(payload, fragment):
    with pytest.raises(RequestError) as excinfo:
        PointSpec.from_payload(payload)
    assert excinfo.value.status == 400
    assert fragment in str(excinfo.value)


def test_resolve_target_bad_topology_is_request_error():
    spec = PointSpec.from_payload(
        {"workload": "GHZ", "size": 4, "topology": "NotATopology"}
    )
    with pytest.raises(RequestError) as excinfo:
        spec.resolve_target()
    assert excinfo.value.status == 400


def test_parse_transpile_single_and_batch():
    single = parse_transpile_request({"workload": "GHZ", "size": 4})
    assert len(single) == 1
    batch = parse_transpile_request(
        {"points": [{"workload": "GHZ", "size": s} for s in (4, 5)]}
    )
    assert [spec.size for spec in batch] == [4, 5]


def test_parse_transpile_rejects_oversized_batch():
    points = [{"workload": "GHZ", "size": 4}] * (MAX_POINTS_PER_REQUEST + 1)
    with pytest.raises(RequestError):
        parse_transpile_request({"points": points})


def test_parse_sweep_grid_matches_canonical_order():
    request = parse_sweep_request(
        {
            "workloads": ["GHZ", "QuantumVolume"],
            "sizes": [4, 6],
            "targets": [{"topology": "Corral1,1", "basis": "siswap"}],
            "chunk_size": 3,
        }
    )
    grid = request.specs
    assert request.chunk_size == 3
    assert request.run_id is None
    target = Target.from_names("Corral1,1", "siswap", scale="small")
    expected = sweep_grid(["GHZ", "QuantumVolume"], [4, 6], [target])
    assert [(spec.workload, spec.size) for spec in grid] == [
        (workload, size) for workload, size, _ in expected
    ]


def test_parse_sweep_empty_grid_raises():
    with pytest.raises(RequestError) as excinfo:
        parse_sweep_request(
            {
                "workloads": ["GHZ"],
                "sizes": [10_000],
                "targets": [{"topology": "Corral1,1"}],
            }
        )
    assert "empty" in str(excinfo.value)


def test_parse_sweep_rejects_bad_target_entry():
    with pytest.raises(RequestError):
        parse_sweep_request(
            {"workloads": ["GHZ"], "sizes": [4], "targets": [{"basis": "siswap"}]}
        )
    with pytest.raises(RequestError):
        parse_sweep_request(
            {
                "workloads": ["GHZ"],
                "sizes": [4],
                "targets": [{"topology": "Corral1,1", "oops": 1}],
            }
        )


def test_stats_delta_subtracts_counters_and_keeps_sizes():
    before = {
        "hits": 2, "misses": 5, "disk_hits": 1, "disk_misses": 4,
        "computed": 4, "currsize": 5, "maxsize": 100,
    }
    after = {
        "hits": 6, "misses": 7, "disk_hits": 1, "disk_misses": 6,
        "computed": 6, "currsize": 7, "maxsize": 100,
    }
    delta = stats_delta(before, after)
    assert delta == {
        "hits": 4, "misses": 2, "disk_hits": 0, "disk_misses": 2,
        "computed": 2, "currsize": 7, "maxsize": 100,
    }
    assert stats_delta(None, after) is None
