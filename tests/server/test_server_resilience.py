"""Server resilience: pool self-healing, deadlines and retry hints.

The compilation server must degrade, never die, when its worker pool is
killed out from under it: ``/v1/health`` flips to ``degraded``, the
dispatcher rebuilds the pool before the next job, and the health flips
back.  Clients get actionable failure semantics — ``deadline_s``
converts an over-budget wait into a 504, 503s carry ``Retry-After``,
and :class:`~repro.server.client.ServeClient` retries transient
refusals/503s with capped backoff.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.server import ServeClient, ServeError, ServerHandle
from repro.server import jobs

pytestmark = [pytest.mark.fast, pytest.mark.chaos]


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestPoolSelfHealing:
    def test_killed_worker_degrades_then_heals(self, tmp_path):
        handle = ServerHandle(
            port=0,
            parallel=True,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            warmup=True,
        ).start()
        try:
            client = ServeClient(port=handle.port, timeout=120.0)
            runner = handle.server.runner
            assert runner.pool_alive
            health = client.health()
            assert health["status"] == "ok"
            assert health["pool"] == {"alive": True, "broken": False, "restarts": 0}

            # SIGKILL one resident worker; the executor notices and marks
            # the pool broken without any job in flight.
            victim = next(iter(runner._pool._processes.values()))
            os.kill(victim.pid, signal.SIGKILL)
            assert _wait_for(lambda: runner.pool_broken)
            assert client.health()["status"] == "degraded"

            # The next job heals the pool instead of answering 500.
            response = client.transpile({"workload": "GHZ", "size": 4})
            assert response["count"] == 1
            health = client.health()
            assert health["status"] == "ok"
            assert health["pool"]["broken"] is False
            assert client.metrics()["pool"]["restarts"] == 1
        finally:
            handle.stop()

    def test_metrics_expose_fault_stats(self, tmp_path):
        with ServerHandle(
            port=0, parallel=False, cache_dir=str(tmp_path / "cache")
        ) as handle:
            metrics = ServeClient(port=handle.port).metrics()
            assert metrics["faults"] == {
                "retries": 0,
                "timeouts": 0,
                "pool_rebuilds": 0,
                "uncached_tasks": 0,
                "quarantined": [],
            }
            assert metrics["pool"] is None  # serial server has no pool


class TestDeadlines:
    def test_transpile_deadline_answers_504(self, monkeypatch):
        def slow_job(specs, runner):
            time.sleep(5.0)
            return {"results": [], "count": 0, "elapsed_seconds": 0.0, "cache": None}

        monkeypatch.setattr(jobs, "run_transpile_job", slow_job)
        with ServerHandle(port=0, parallel=False, no_cache=True) as handle:
            client = ServeClient(port=handle.port, timeout=30.0)
            start = time.perf_counter()
            with pytest.raises(ServeError) as excinfo:
                client.transpile({"workload": "GHZ", "size": 4}, deadline_s=0.3)
            assert excinfo.value.status == 504
            assert excinfo.value.retry_after is not None
            assert time.perf_counter() - start < 4.0

    def test_sweep_deadline_surfaces_as_stream_error(self, monkeypatch):
        def slow_sweep(specs, chunk_size, runner, emit):
            emit({"type": "start", "total": len(specs), "chunks": 1})
            time.sleep(5.0)
            emit({"type": "result", "records": [], "count": 0})
            return 0

        monkeypatch.setattr(jobs, "run_sweep_job", slow_sweep)
        with ServerHandle(port=0, parallel=False, no_cache=True) as handle:
            client = ServeClient(port=handle.port, timeout=30.0)
            with pytest.raises(ServeError) as excinfo:
                client.sweep(
                    ["GHZ"],
                    [4],
                    [{"topology": "Corral1,1"}],
                    deadline_s=0.3,
                )
            assert excinfo.value.status == 504
            assert "deadline" in str(excinfo.value)

    def test_invalid_deadline_is_400(self):
        with ServerHandle(port=0, parallel=False, no_cache=True) as handle:
            client = ServeClient(port=handle.port)
            with pytest.raises(ServeError) as excinfo:
                client.transpile({"workload": "GHZ", "size": 4}, deadline_s=-1)
            assert excinfo.value.status == 400


class TestRetryAfter:
    def test_queue_full_503_carries_retry_after(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocking_job(specs, runner):
            started.set()
            assert release.wait(timeout=30)
            return {"results": [], "count": 0, "elapsed_seconds": 0.0, "cache": None}

        monkeypatch.setattr(jobs, "run_transpile_job", blocking_job)
        with ServerHandle(port=0, parallel=False, no_cache=True, queue_size=1) as handle:
            point = {"workload": "GHZ", "size": 4}
            outcomes = {}

            def post(name):
                client = ServeClient(port=handle.port, timeout=60.0)
                try:
                    outcomes[name] = client.transpile(point)
                except ServeError as error:
                    outcomes[name] = error

            first = threading.Thread(target=post, args=("first",))
            first.start()
            assert started.wait(timeout=30)
            second = threading.Thread(target=post, args=("second",))
            second.start()
            probe = ServeClient(port=handle.port, timeout=10.0)
            assert _wait_for(lambda: probe.health()["queue_depth"] >= 1)

            # retries=0 exposes the raw 503 instead of waiting it out.
            overflow = ServeClient(port=handle.port, timeout=10.0, retries=0)
            with pytest.raises(ServeError) as excinfo:
                overflow.transpile(point)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 1.0

            release.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert outcomes["first"]["count"] == 0
            assert outcomes["second"]["count"] == 0


class TestClientRetries:
    def test_refused_connections_are_retried(self, tmp_path):
        with ServerHandle(
            port=0, parallel=False, cache_dir=str(tmp_path / "cache")
        ) as handle:
            client = ServeClient(
                port=handle.port, timeout=30.0, retries=2, retry_backoff=0.01
            )
            attempts = {"n": 0}
            real_open = client._open

            def flaky_open(method, path, payload=None):
                attempts["n"] += 1
                if attempts["n"] <= 2:
                    raise ConnectionRefusedError("simulated restart window")
                return real_open(method, path, payload)

            client._open = flaky_open
            assert client.health()["status"] == "ok"
            assert attempts["n"] == 3

    def test_retries_exhausted_raises_the_refusal(self):
        client = ServeClient(port=1, timeout=1.0, retries=1, retry_backoff=0.01)
        with pytest.raises(ConnectionRefusedError):
            client.health()
