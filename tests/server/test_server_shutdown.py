"""Graceful drain and queue backpressure."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.server import ServeClient, ServeError, ServerHandle
from repro.server import jobs

pytestmark = pytest.mark.fast


def test_shutdown_drains_in_flight_stream(tmp_path):
    """A sweep already streaming when shutdown arrives still completes."""
    handle = ServerHandle(
        port=0, parallel=False, cache_dir=str(tmp_path / "cache")
    ).start()
    try:
        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        body = json.dumps(
            {
                "workloads": ["GHZ"],
                "sizes": [4, 5, 6],
                "targets": [{"topology": "Corral1,1"}],
                "chunk_size": 1,
            }
        ).encode()
        connection.request(
            "POST", "/v1/sweep", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        assert response.status == 200
        first = json.loads(response.readline())
        assert first["type"] == "start"

        # The stream is in flight: ask for shutdown from a second client.
        control = ServeClient(port=handle.port, timeout=10.0)
        assert control.shutdown() == {"status": "draining"}

        # The drain must deliver the rest of the stream, result included.
        events = [json.loads(line) for line in iter(response.readline, b"") if line.strip()]
        response.close()
        assert events[-1]["type"] == "result"
        assert events[-1]["count"] == 3
    finally:
        handle.stop()

    # After the drain the socket is gone.
    with pytest.raises(OSError):
        http.client.HTTPConnection("127.0.0.1", handle.port, timeout=2).request(
            "GET", "/v1/health"
        )


def test_queue_full_answers_503(monkeypatch):
    """With the one dispatcher slot busy and the queue full, reject with 503."""
    release = threading.Event()
    started = threading.Event()

    def blocking_job(specs, runner):
        started.set()
        assert release.wait(timeout=30)
        return {"results": [], "count": 0, "elapsed_seconds": 0.0, "cache": None}

    monkeypatch.setattr(jobs, "run_transpile_job", blocking_job)

    with ServerHandle(port=0, parallel=False, no_cache=True, queue_size=1) as handle:
        point = {"workload": "GHZ", "size": 4}
        results = {}

        def post(name):
            client = ServeClient(port=handle.port, timeout=60.0)
            try:
                results[name] = client.transpile(point)
            except ServeError as error:
                results[name] = error

        # First request occupies the dispatcher (blocked inside the job)...
        first = threading.Thread(target=post, args=("first",))
        first.start()
        assert started.wait(timeout=30)
        # ...second parks in the queue's single slot...
        second = threading.Thread(target=post, args=("second",))
        second.start()
        probe = ServeClient(port=handle.port, timeout=10.0)
        for _ in range(200):
            if probe.health()["queue_depth"] >= 1:
                break
            time.sleep(0.01)
        assert probe.health()["queue_depth"] == 1
        # ...so a third is rejected immediately with 503.
        overflow = ServeClient(port=handle.port, timeout=10.0)
        with pytest.raises(ServeError) as excinfo:
            overflow.transpile(point)
        assert excinfo.value.status == 503

        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert results["first"]["count"] == 0
        assert results["second"]["count"] == 0
