"""Streaming ``/v1/sweep`` behaviour: progress lines, parity, cache reuse."""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_sweep
from repro.server import ServeError
from repro.transpiler.target import Target

pytestmark = pytest.mark.fast

TARGETS = [{"topology": "Corral1,1", "basis": "siswap"}]


def test_sweep_streams_start_progress_result(client):
    events = []
    result = client.sweep(
        ["GHZ"], [4, 5, 6], TARGETS, on_progress=events.append, chunk_size=2
    )
    assert result["type"] == "result"
    assert result["count"] == 3
    assert [e["type"] for e in events] == ["start", "progress", "progress"]
    assert events[0] == {"type": "start", "total": 3, "chunks": 2}
    assert [e["completed"] for e in events[1:]] == [2, 3]
    assert all(e["total"] == 3 for e in events[1:])
    assert all(e["chunk_seconds"] >= 0 for e in events[1:])


def test_sweep_records_match_direct_run_sweep(client):
    result = client.sweep(["GHZ"], [4, 6], TARGETS)
    target = Target.from_names(
        "Corral1,1", "siswap", scale="small", name="Corral1,1-siswap"
    )
    direct = run_sweep(["GHZ"], [4, 6], [target])
    assert result["records"] == [record.as_dict() for record in direct.records]


def test_sweep_warm_repeat_is_all_hits(client):
    cold = client.sweep(["GHZ"], [4, 5], TARGETS)
    assert cold["cache"]["computed"] == 2
    warm = client.sweep(["GHZ"], [4, 5], TARGETS)
    assert warm["cache"]["computed"] == 0
    assert warm["cache"]["hits"] == 2
    assert warm["records"] == cold["records"]


def test_sweep_skips_sizes_wider_than_target(client):
    # The small Corral1,1 target has a finite qubit count; an absurd width
    # is silently dropped from the grid, exactly like run_sweep's grid.
    result = client.sweep(["GHZ"], [4, 10_000], TARGETS)
    assert result["count"] == 1
    assert result["records"][0]["circuit_qubits"] == 4


def test_sweep_empty_grid_is_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.sweep(["GHZ"], [10_000], TARGETS)
    assert excinfo.value.status == 400


def test_sweep_unknown_field_is_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.sweep(["GHZ"], [4], TARGETS, bogus_option=1)
    assert excinfo.value.status == 400


def test_sweep_shares_cache_with_transpile(client):
    client.transpile({"workload": "GHZ", "size": 6})
    result = client.sweep(["GHZ"], [6], TARGETS)
    # The sweep point is identical to the transpile point, so it must be
    # served from the cache rather than recomputed.
    assert result["cache"]["computed"] == 0
    assert result["cache"]["hits"] == 1


class TestCheckpointedSweep:
    def test_run_id_streams_shard_lines(self, client):
        events = []
        result = client.sweep(
            ["GHZ"],
            [4, 5, 6],
            TARGETS,
            on_progress=events.append,
            run_id="run-a",
            shard_points=2,
        )
        assert result["type"] == "result"
        assert result["count"] == 3
        assert result["computed"] == 3
        assert events[0] == {
            "type": "start",
            "total": 3,
            "run_id": "run-a",
            "shards": 2,
        }
        shard_lines = [e for e in events if e["type"] == "shard"]
        assert [e["shard"] for e in shard_lines] == [1, 2]
        assert all(e["status"] == "computed" for e in shard_lines)
        assert [e["points"] for e in shard_lines] == [2, 1]

    def test_repost_restores_from_checkpoint(self, client):
        cold = client.sweep(
            ["GHZ"], [4, 5], TARGETS, run_id="run-b", shard_points=1
        )
        assert cold["computed"] == 2
        events = []
        warm = client.sweep(
            ["GHZ"],
            [4, 5],
            TARGETS,
            on_progress=events.append,
            run_id="run-b",
            shard_points=1,
        )
        assert warm["computed"] == 0
        statuses = [e["status"] for e in events if e["type"] == "shard"]
        assert statuses == ["restored", "restored"]
        assert warm["records"] == cold["records"]

    def test_checkpoints_live_under_the_cache_dir(self, client, live_server):
        client.sweep(["GHZ"], [4], TARGETS, run_id="run-c", shard_points=1)
        cache_dir = live_server.server.runner.result_cache.cache_dir
        checkpoint = cache_dir / "checkpoints" / "run-c"
        assert (checkpoint / "manifest.json").is_file()
        assert sorted(p.name for p in checkpoint.glob("shard-*.rsd")) == [
            "shard-00000.rsd"
        ]

    def test_different_spec_same_run_id_is_refused(self, client):
        client.sweep(["GHZ"], [4], TARGETS, run_id="run-d")
        with pytest.raises(ServeError):
            client.sweep(["GHZ"], [5], TARGETS, run_id="run-d")

    @pytest.mark.parametrize("run_id", ["", "../escape", "a/b", "x" * 65])
    def test_bad_run_id_is_400(self, client, run_id):
        with pytest.raises(ServeError) as excinfo:
            client.sweep(["GHZ"], [4], TARGETS, run_id=run_id)
        assert excinfo.value.status == 400

    def test_shard_points_without_run_id_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.sweep(["GHZ"], [4], TARGETS, shard_points=2)
        assert excinfo.value.status == 400

    def test_run_id_without_persistent_cache_is_400(self):
        from repro.server import ServeClient, ServerHandle

        with ServerHandle(port=0, parallel=False) as handle:
            bare = ServeClient(port=handle.port, timeout=30.0)
            with pytest.raises(ServeError) as excinfo:
                bare.sweep(["GHZ"], [4], TARGETS, run_id="run-e")
            assert excinfo.value.status == 400
            assert "persistent cache" in str(excinfo.value)
