"""Fused single-qubit fast path and width-validation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gate import UnitaryGate
from repro.linalg.random import random_su2, random_unitary
from repro.simulator import HARD_QUBIT_LIMIT, StatevectorSimulator

SINGLE_QUBIT_OPS = ("h", "x", "y", "z", "s", "t")


def _random_circuit(num_qubits: int, depth: int, rng: np.random.Generator):
    """Random mix of named 1Q gates, raw SU(2)/SU(4) blocks and CX/SWAP."""
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        choice = rng.integers(0, 4)
        if choice == 0:
            getattr(circuit, str(rng.choice(SINGLE_QUBIT_OPS)))(
                int(rng.integers(num_qubits))
            )
        elif choice == 1:
            circuit.append(
                UnitaryGate(random_su2(rng)), (int(rng.integers(num_qubits)),)
            )
        elif choice == 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(UnitaryGate(random_unitary(4, rng)), (int(a), int(b)))
    return circuit


class TestFusedFastPath:
    @pytest.mark.parametrize("seed", range(5))
    def test_fused_matches_unfused_on_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(4, depth=30, rng=rng)
        fused = StatevectorSimulator(fuse_single_qubit=True).run(circuit)
        unfused = StatevectorSimulator(fuse_single_qubit=False).run(circuit)
        assert np.allclose(fused, unfused, atol=1e-10)

    def test_long_single_qubit_chain(self):
        circuit = QuantumCircuit(2)
        for _ in range(12):
            circuit.h(0)
            circuit.t(0)
            circuit.s(1)
        circuit.cx(0, 1)
        circuit.h(1)
        fused = StatevectorSimulator(fuse_single_qubit=True).run(circuit)
        unfused = StatevectorSimulator(fuse_single_qubit=False).run(circuit)
        assert np.allclose(fused, unfused, atol=1e-10)

    def test_barriers_are_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        state = StatevectorSimulator().run(circuit)
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1 / np.sqrt(2)
        assert np.allclose(state, bell)


class TestWidthValidation:
    def test_default_width_accepted(self):
        assert StatevectorSimulator() is not None

    @pytest.mark.parametrize("width", (0, -3))
    def test_non_positive_width_rejected(self, width):
        with pytest.raises(ValueError, match="at least 1"):
            StatevectorSimulator(max_qubits=width)

    @pytest.mark.parametrize("width", (HARD_QUBIT_LIMIT + 1, 200))
    def test_absurd_width_rejected_up_front(self, width):
        with pytest.raises(ValueError, match="dense-simulation limit"):
            StatevectorSimulator(max_qubits=width)

    def test_oversized_circuit_still_rejected_at_run(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError, match="exceeds the simulator"):
            simulator.run(QuantumCircuit(4))
