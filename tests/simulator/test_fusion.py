"""Tests for the shared contraction / single-qubit fusion helpers."""

import numpy as np
import pytest

from repro.linalg.random import random_unitary
from repro.simulator.fusion import SingleQubitFusion, apply_matrix_to_axes
from repro.simulator.statevector import sample_probability_counts


class TestApplyMatrixToAxes:
    def test_single_axis_matches_full_kron(self):
        rng = np.random.default_rng(3)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        unitary = random_unitary(2, seed=5)
        # Axis 1 of a (2, 2, 2) tensor is the middle bit of the index.
        result = apply_matrix_to_axes(state.reshape(2, 2, 2), unitary, [1])
        full = np.kron(np.kron(np.eye(2), unitary), np.eye(2))
        assert np.allclose(result.reshape(8), full @ state)

    def test_two_axes_respect_significance_order(self):
        rng = np.random.default_rng(7)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        unitary = random_unitary(4, seed=9)
        # Axes (0, 2): first listed axis = most significant bit of the
        # operator basis, so the embedding permutes accordingly.
        result = apply_matrix_to_axes(state.reshape(2, 2, 2), unitary, [0, 2])
        tensor = unitary.reshape(2, 2, 2, 2)
        reference = np.einsum(
            "acbd,bed->aec", tensor, state.reshape(2, 2, 2)
        )
        assert np.allclose(result, reference)

    def test_preserves_tensor_shape(self):
        tensor = np.zeros((2, 2, 2, 2), dtype=complex)
        tensor[0, 0, 0, 0] = 1.0
        result = apply_matrix_to_axes(tensor, random_unitary(4, seed=1), [3, 0])
        assert result.shape == tensor.shape


class TestSingleQubitFusion:
    def test_fuses_runs_in_application_order(self):
        a = random_unitary(2, seed=11)
        b = random_unitary(2, seed=12)
        fusion = SingleQubitFusion()
        fusion.push(0, a)
        fusion.push(0, b)
        drained = dict(fusion.drain())
        # b applied after a means the fused product is b @ a.
        assert np.allclose(drained[0], b @ a)
        assert not fusion

    def test_partial_drain_leaves_other_qubits_pending(self):
        fusion = SingleQubitFusion()
        fusion.push(0, np.eye(2))
        fusion.push(2, np.eye(2))
        drained = list(fusion.drain([0, 1]))
        assert [qubit for qubit, _ in drained] == [0]
        assert fusion
        assert [qubit for qubit, _ in fusion.drain()] == [2]

    def test_full_drain_is_sorted_by_qubit(self):
        fusion = SingleQubitFusion()
        for qubit in (3, 1, 2):
            fusion.push(qubit, np.eye(2))
        assert [qubit for qubit, _ in fusion.drain()] == [1, 2, 3]


class TestSampleProbabilityCounts:
    def test_counts_sum_to_shots(self):
        counts = sample_probability_counts(
            np.array([0.5, 0.0, 0.0, 0.5]), width=2, shots=100, seed=2
        )
        assert sum(counts.values()) == 100
        assert set(counts) <= {"00", "11"}

    def test_unnormalised_input_is_rescaled(self):
        counts = sample_probability_counts(
            np.array([2.0, 2.0]), width=1, shots=50, seed=4
        )
        assert sum(counts.values()) == 50

    def test_all_zero_vector_raises(self):
        with pytest.raises(ValueError, match="all-zero probability"):
            sample_probability_counts(np.zeros(4), width=2, shots=10, seed=0)
