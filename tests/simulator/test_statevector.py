"""Tests for the state-vector simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.simulator import StatevectorSimulator, statevector


class TestBasicStates:
    def test_initial_state_all_zero(self):
        circuit = QuantumCircuit(3)
        state = statevector(circuit)
        assert state[0] == pytest.approx(1.0)

    def test_x_flips_qubit0(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = statevector(circuit)
        # Little-endian: qubit 0 set -> index 1.
        assert abs(state[1]) == pytest.approx(1.0)

    def test_x_flips_qubit1(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        state = statevector(circuit)
        assert abs(state[2]) == pytest.approx(1.0)

    def test_bell_state(self, bell_circuit):
        state = statevector(bell_circuit)
        assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(state[3]) == pytest.approx(1 / np.sqrt(2))
        assert abs(state[1]) == pytest.approx(0.0)

    def test_ghz_state(self, ghz4_circuit):
        state = statevector(ghz4_circuit)
        assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(state[-1]) == pytest.approx(1 / np.sqrt(2))

    def test_cx_control_qubit0(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.cx(0, 1)
        state = statevector(circuit)
        assert abs(state[3]) == pytest.approx(1.0)

    def test_cx_respects_control_off(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = statevector(circuit)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_barrier_is_noop(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cx(0, 1)
        reference = QuantumCircuit(2)
        reference.h(0).cx(0, 1)
        assert np.allclose(statevector(circuit), statevector(reference))

    def test_norm_preserved(self):
        circuit = QuantumCircuit(4)
        rng = np.random.default_rng(1)
        for _ in range(20):
            a, b = rng.choice(4, 2, replace=False)
            circuit.cx(int(a), int(b))
            circuit.rx(float(rng.uniform(0, np.pi)), int(a))
        assert np.linalg.norm(statevector(circuit)) == pytest.approx(1.0)


class TestSimulatorAPI:
    def test_custom_initial_state(self):
        simulator = StatevectorSimulator()
        circuit = QuantumCircuit(1)
        circuit.x(0)
        initial = np.array([0.0, 1.0], dtype=complex)
        final = simulator.run(circuit, initial_state=initial)
        assert abs(final[0]) == pytest.approx(1.0)

    def test_initial_state_dimension_checked(self):
        simulator = StatevectorSimulator()
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(2), initial_state=np.array([1.0, 0.0]))

    def test_qubit_limit(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(4))

    def test_probabilities_sum_to_one(self, ghz4_circuit):
        probabilities = StatevectorSimulator().probabilities(ghz4_circuit)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_sample_counts(self, bell_circuit):
        counts = StatevectorSimulator().sample_counts(bell_circuit, shots=500, seed=7)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 500

    def test_expectation_z_bell(self, bell_circuit):
        simulator = StatevectorSimulator()
        # <Z0 Z1> = +1 for the Bell state, <Z0> = 0.
        assert simulator.expectation_z(bell_circuit, [0, 1]) == pytest.approx(1.0)
        assert simulator.expectation_z(bell_circuit, [0]) == pytest.approx(0.0)
