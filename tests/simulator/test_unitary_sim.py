"""Tests for the unitary simulator and equivalence checks."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.linalg.matrices import kron
from repro.linalg.random import random_unitary
from repro.simulator import circuit_unitary, circuits_equivalent, statevector


class TestCircuitUnitary:
    def test_identity_circuit(self):
        assert np.allclose(circuit_unitary(QuantumCircuit(2)), np.eye(4))

    def test_single_gate_on_two_qubit_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        # Little-endian register: control is qubit 0 (LSB).
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
        assert np.allclose(circuit_unitary(circuit), expected)

    def test_tensor_structure_of_1q_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        # Acting on qubit 0 (LSB) => I (x) H in little-endian matrix ordering.
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert np.allclose(circuit_unitary(circuit), kron(np.eye(2), h))

    def test_unitary_times_basis_state_matches_statevector(self):
        rng = np.random.default_rng(5)
        circuit = QuantumCircuit(3)
        for _ in range(12):
            a, b = rng.choice(3, 2, replace=False)
            circuit.unitary(random_unitary(4, rng), (int(a), int(b)))
        matrix = circuit_unitary(circuit)
        assert np.allclose(matrix[:, 0], statevector(circuit))

    def test_composition_order(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.z(0)
        # z @ x applied in order => matrix = Z X.
        expected = np.diag([1, -1]) @ np.array([[0, 1], [1, 0]])
        assert np.allclose(circuit_unitary(circuit), expected)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            circuit_unitary(QuantumCircuit(13))


class TestEquivalence:
    def test_swap_equals_three_cx(self):
        swap = QuantumCircuit(2)
        swap.swap(0, 1)
        three_cx = QuantumCircuit(2)
        three_cx.cx(0, 1).cx(1, 0).cx(0, 1)
        assert circuits_equivalent(swap, three_cx)

    def test_different_circuits_not_equivalent(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert not circuits_equivalent(a, b)

    def test_width_mismatch(self):
        assert not circuits_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_global_phase_handling(self):
        a = QuantumCircuit(1)
        a.rz(np.pi, 0)
        b = QuantumCircuit(1)
        b.z(0)
        assert circuits_equivalent(a, b, up_to_global_phase=True)
        assert not circuits_equivalent(a, b, up_to_global_phase=False)
