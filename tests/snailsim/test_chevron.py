"""Tests for the chevron sweep (paper Fig. 6 software twin)."""

import numpy as np
import pytest

from repro.snailsim import SnailExchangeModel, chevron_sweep, render_ascii_chevron


@pytest.fixture(scope="module")
def chevron():
    model = SnailExchangeModel(coupling_mhz=0.5, t1_us=50.0)
    return chevron_sweep(
        model,
        pulse_lengths_ns=np.linspace(0.0, 2000.0, 101),
        detunings_mhz=np.linspace(-1.5, 1.5, 31),
    )


class TestChevron:
    def test_grid_shape(self, chevron):
        assert chevron.source_population.shape == (31, 101)
        assert chevron.target_population.shape == (31, 101)

    def test_population_bounds(self, chevron):
        for grid in (chevron.source_population, chevron.target_population):
            assert np.all(grid >= -1e-12) and np.all(grid <= 1.0 + 1e-12)

    def test_initial_condition(self, chevron):
        # At zero pulse length the source qubit holds the excitation.
        assert np.allclose(chevron.source_population[:, 0], 0.0, atol=1e-9)
        assert np.allclose(chevron.target_population[:, 0], 1.0, atol=1e-9)

    def test_on_resonance_full_exchange(self, chevron):
        source, target = chevron.on_resonance_slice()
        # Somewhere along the sweep the excitation fully transfers.
        assert np.min(target) < 0.1
        assert np.max(1.0 - source) > 0.9

    def test_chevron_symmetry_in_detuning(self, chevron):
        # The pattern is symmetric under detuning sign flip.
        assert np.allclose(
            chevron.target_population, chevron.target_population[::-1, :], atol=1e-9
        )

    def test_off_resonance_contrast_reduced(self, chevron):
        transferred_on = np.max(1.0 - chevron.target_population[15])  # delta = 0
        transferred_off = np.max(1.0 - chevron.target_population[0])  # delta = -1.5 MHz
        assert transferred_off < transferred_on

    def test_oscillation_period_matches_coupling(self, chevron):
        # g = 0.5 MHz -> full exchange period 1/g = 2000 ns.
        assert chevron.oscillation_period_ns() == pytest.approx(2000.0, rel=0.05)

    def test_ascii_rendering(self, chevron):
        art = render_ascii_chevron(chevron, width=40, height=11)
        lines = art.splitlines()
        assert len(lines) == 12
        assert "MHz" in lines[0]
