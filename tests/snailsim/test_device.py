"""Tests for the SNAIL exchange device model."""

import numpy as np
import pytest

from repro.gates import ISwapGate, NthRootISwapGate
from repro.linalg.matrices import is_unitary, matrices_equal
from repro.snailsim import SnailExchangeModel


class TestCoherentExchange:
    def test_full_transfer_on_resonance(self):
        model = SnailExchangeModel(coupling_mhz=0.5, t1_us=1e9)
        half_period = 1e3 / (2 * 0.5)  # ns for full transfer
        assert model.transfer_probability(half_period, 0.0) == pytest.approx(1.0, abs=1e-9)

    def test_no_transfer_at_time_zero(self):
        model = SnailExchangeModel()
        assert model.transfer_probability(0.0, 0.0) == 0.0

    def test_detuning_reduces_contrast(self):
        model = SnailExchangeModel(coupling_mhz=0.5)
        resonant = max(
            model.transfer_probability(t, 0.0) for t in np.linspace(0, 2000, 400)
        )
        detuned = max(
            model.transfer_probability(t, 1.0) for t in np.linspace(0, 2000, 400)
        )
        assert detuned < resonant

    def test_detuning_speeds_up_oscillation(self):
        model = SnailExchangeModel(coupling_mhz=0.5)
        assert model.rabi_rate(1.0) > model.rabi_rate(0.0)

    def test_decay_envelope_monotone(self):
        model = SnailExchangeModel(t1_us=10.0)
        assert model.decay_envelope(0.0) == 1.0
        assert model.decay_envelope(500.0) > model.decay_envelope(5000.0)

    def test_populations_bounded(self):
        model = SnailExchangeModel()
        for pulse in (0.0, 300.0, 900.0):
            for detuning in (-1.0, 0.0, 0.7):
                source, target = model.populations(pulse, detuning)
                assert 0.0 <= source <= 1.0 and 0.0 <= target <= 1.0


class TestGateConstruction:
    def test_exchange_unitary_is_unitary(self):
        model = SnailExchangeModel()
        assert is_unitary(model.exchange_unitary(123.0, 0.4))

    @pytest.mark.parametrize("root", [1, 2, 3, 4])
    def test_pulse_length_realises_nth_root_iswap(self, root):
        """Paper Eq. 9: g t = pi / (2n) yields the n-th root of iSWAP."""
        model = SnailExchangeModel(coupling_mhz=0.5)
        pulse = model.pulse_length_for_root(root)
        unitary = model.exchange_unitary(pulse, detuning_mhz=0.0)
        assert matrices_equal(
            unitary, NthRootISwapGate(root).matrix(), up_to_global_phase=True, atol=1e-6
        )

    def test_pulse_length_scales_inversely_with_root(self):
        model = SnailExchangeModel()
        assert model.pulse_length_for_root(4) == pytest.approx(
            model.pulse_length_for_root(2) / 2.0
        )

    def test_full_iswap_pulse(self):
        model = SnailExchangeModel(coupling_mhz=0.5)
        pulse = model.pulse_length_for_root(1)
        assert matrices_equal(
            model.exchange_unitary(pulse), ISwapGate().matrix(), up_to_global_phase=True, atol=1e-6
        )

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            SnailExchangeModel().pulse_length_for_root(0)

    def test_shorter_pulse_higher_fidelity(self):
        """The co-design argument: fractional pulses lose less coherence."""
        model = SnailExchangeModel(coupling_mhz=0.5, t1_us=20.0)
        full = model.gate_fidelity_estimate(model.pulse_length_for_root(1))
        quarter = model.gate_fidelity_estimate(model.pulse_length_for_root(4))
        assert quarter > full
