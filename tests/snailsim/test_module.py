"""Tests for the multi-mode SNAIL module simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import NthRootISwapGate, SqrtISwapGate
from repro.snailsim.module import PumpTone, SnailModule


def default_module(**overrides) -> SnailModule:
    return SnailModule(**overrides)


def single_pair_unitary(module: SnailModule, pair, root: int) -> np.ndarray:
    """Reduced 4x4 unitary on ``pair`` from a single on-resonance pump."""
    full = module.parallel_gate_unitary([pair], root=root)
    # Extract the action on the pair assuming all other qubits stay in |0>.
    a, b = sorted(pair)
    indices = [0, 1 << a, 1 << b, (1 << a) | (1 << b)]
    reduced = full[np.ix_(indices, indices)]
    return reduced


class TestConstruction:
    def test_rejects_single_qubit_module(self):
        with pytest.raises(ValueError):
            SnailModule(qubit_frequencies_ghz=(5.0,))

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError):
            SnailModule(qubit_frequencies_ghz=(5.0, 5.0, 6.0))

    def test_rejects_bad_linewidth_and_t1(self):
        with pytest.raises(ValueError):
            SnailModule(crosstalk_linewidth_mhz=0.0)
        with pytest.raises(ValueError):
            SnailModule(t1_us=0.0)

    def test_default_module_has_four_qubits_and_six_pairs(self):
        module = default_module()
        assert module.num_qubits == 4
        assert len(module.pairs()) == 6

    def test_difference_frequencies_are_distinct(self):
        module = default_module()
        assert module.minimum_difference_separation_mhz() > 50.0


class TestEffectiveCouplings:
    def test_single_pump_targets_its_pair(self):
        module = default_module()
        couplings = module.effective_couplings([PumpTone(pair=(0, 1), strength_mhz=0.5)])
        assert couplings[(0, 1)] == pytest.approx(0.5, rel=1e-3)

    def test_spurious_couplings_are_strongly_suppressed(self):
        module = default_module()
        couplings = module.effective_couplings([PumpTone(pair=(0, 1), strength_mhz=0.5)])
        for pair, strength in couplings.items():
            if pair != (0, 1):
                assert strength < 0.01

    def test_crowded_frequencies_leak(self):
        # Two pairs with difference frequencies only 2 MHz apart leak pump
        # power into each other.
        module = SnailModule(qubit_frequencies_ghz=(4.5, 5.0, 5.502, 6.4))
        couplings = module.effective_couplings([PumpTone(pair=(0, 1), strength_mhz=0.5)])
        assert couplings.get((1, 2), 0.0) > 0.05

    def test_pump_outside_module_rejected(self):
        with pytest.raises(ValueError):
            default_module().effective_couplings([PumpTone(pair=(0, 9))])


class TestSingleGate:
    @pytest.mark.parametrize("root", [1, 2, 3, 4])
    def test_on_resonance_pulse_realises_nth_root_iswap(self, root):
        module = default_module()
        reduced = single_pair_unitary(module, (0, 1), root)
        expected = NthRootISwapGate(root).matrix()
        overlap = abs(np.trace(expected.conj().T @ reduced)) / 4.0
        assert overlap == pytest.approx(1.0, abs=1e-3)

    def test_pulse_length_scales_inversely_with_root(self):
        module = default_module()
        assert module.pulse_length_for_root(4) == pytest.approx(
            module.pulse_length_for_root(2) / 2.0
        )

    def test_pulse_length_rejects_bad_root(self):
        with pytest.raises(ValueError):
            default_module().pulse_length_for_root(0)

    def test_evolution_is_unitary(self):
        module = default_module()
        unitary = module.parallel_gate_unitary([(0, 2)], root=2)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(16), atol=1e-9)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            default_module().evolve([PumpTone(pair=(0, 1))], -1.0)


class TestParallelGates:
    def test_disjoint_pairs_run_in_parallel_with_high_fidelity(self):
        """Paper Section 4.1: multiple gates can run in one neighbourhood at once."""
        module = default_module()
        fidelity = module.parallel_gate_fidelity([(0, 1), (2, 3)], root=2)
        assert fidelity > 0.99

    def test_parallel_fidelity_degrades_when_frequencies_crowd(self):
        clean = default_module()
        crowded = SnailModule(qubit_frequencies_ghz=(4.5, 5.0, 5.504, 6.006))
        clean_fidelity = clean.parallel_gate_fidelity([(0, 1), (2, 3)], root=2)
        crowded_fidelity = crowded.parallel_gate_fidelity([(0, 1), (2, 3)], root=2)
        assert crowded_fidelity < clean_fidelity

    def test_overlapping_pairs_do_not_factorise(self):
        module = default_module()
        fidelity = module.parallel_gate_fidelity([(0, 1), (1, 2)], root=2)
        assert fidelity < 0.99

    def test_ideal_parallel_unitary_matches_tensor_product(self):
        module = default_module()
        ideal = module.ideal_parallel_unitary([(0, 1), (2, 3)], root=2)
        siswap = SqrtISwapGate().matrix()
        # Little-endian tensor: qubit 0 least significant.  The pair (0, 1)
        # occupies the low factor and (2, 3) the high factor; within a pair
        # the exchange block is symmetric so argument order does not matter.
        expected = np.kron(siswap, siswap)
        overlap = abs(np.trace(expected.conj().T @ ideal)) / 16.0
        assert overlap == pytest.approx(1.0, abs=1e-9)


class TestThreeModeGate:
    def test_requires_distinct_qubits(self):
        with pytest.raises(ValueError):
            default_module().three_mode_unitary(0, (0, 1))

    def test_excitation_spreads_to_both_partners(self):
        module = default_module()
        spread = module.three_mode_excitation_spread(0, (1, 2))
        # Default duration fully transfers the hub excitation to the
        # symmetric partner state: ~50% on each partner, ~0 on the hub.
        assert spread[0] == pytest.approx(0.0, abs=1e-6)
        assert spread[1] == pytest.approx(0.5, abs=1e-6)
        assert spread[2] == pytest.approx(0.5, abs=1e-6)
        assert spread[3] == pytest.approx(0.0, abs=1e-6)

    def test_half_duration_leaves_tripartite_superposition(self):
        module = default_module()
        g = 2.0 * np.pi * 0.5 * 1e-3
        half = 0.5 * (np.pi / 2.0) / (np.sqrt(2.0) * g)
        spread = module.three_mode_excitation_spread(0, (1, 2), duration_ns=half)
        assert 0.0 < spread[0] < 1.0
        assert spread[1] > 0.0 and spread[2] > 0.0

    def test_total_excitation_is_conserved(self):
        module = default_module()
        spread = module.three_mode_excitation_spread(0, (1, 3))
        assert sum(spread.values()) == pytest.approx(1.0, abs=1e-9)


class TestModuleProperties:
    @given(
        root=st.integers(min_value=1, max_value=6),
        strength=st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_single_pump_evolution_always_unitary(self, root, strength):
        module = default_module()
        unitary = module.parallel_gate_unitary([(1, 3)], root=root, strength_mhz=strength)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(16), atol=1e-8)

    @given(duration=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=20, deadline=None)
    def test_excitation_number_is_conserved(self, duration):
        module = default_module()
        pumps = [PumpTone(pair=(0, 1)), PumpTone(pair=(2, 3))]
        unitary = module.evolve(pumps, duration)
        # The exchange Hamiltonian conserves total excitation number: the
        # single-excitation subspace never leaks into other sectors.
        dim = 2 ** module.num_qubits
        weights = [bin(index).count("1") for index in range(dim)]
        for column in range(dim):
            amplitudes = unitary[:, column]
            for row in range(dim):
                if weights[row] != weights[column]:
                    assert abs(amplitudes[row]) < 1e-9
