"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("tables", "swaps", "codesign", "headline", "sensitivity", "chevron"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_run_command_arguments(self):
        args = build_parser().parse_args(
            ["run", "GHZ", "10", "--topology", "Tree", "--basis", "siswap"]
        )
        assert args.workload == "GHZ" and args.size == 10
        assert args.topology == "Tree"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Shor", "10"])

    def test_layout_and_routing_choices_come_from_pass_registry(self):
        from repro.transpiler import available_passes

        parser = build_parser()
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        by_dest = {action.dest: action for action in run_parser._actions}
        assert list(by_dest["layout"].choices) == available_passes("layout")
        assert list(by_dest["routing"].choices) == available_passes("routing")
        assert "noise_aware" in by_dest["routing"].choices

    def test_bad_routing_name_errors_listing_registered_options(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "GHZ", "8", "--routing", "teleport"])
        message = capsys.readouterr().err
        assert "teleport" in message
        assert "sabre" in message and "noise_aware" in message

    def test_run_level_option(self, capsys):
        assert main(["run", "GHZ", "8", "--level", "2"]) == 0
        assert "total_swaps" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "GHZ", "8", "--level", "9"])

    def test_level_choices_come_from_preset_table(self):
        from repro.transpiler import available_levels

        run_parser = build_parser()._subparsers._group_actions[0].choices["run"]
        by_dest = {action.dest: action for action in run_parser._actions}
        assert list(by_dest["level"].choices) == available_levels()

    def test_run_topology_name_normalised(self, capsys):
        assert main(["run", "GHZ", "8", "--topology", "corral-1-1"]) == 0
        assert "Corral1,1" in capsys.readouterr().out


class TestExecution:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Corral1,1" in output

    def test_run_command(self, capsys):
        assert main(["run", "GHZ", "8", "--topology", "Corral1,1", "--basis", "siswap"]) == 0
        output = capsys.readouterr().out
        assert "total_swaps" in output

    def test_swaps_command_with_custom_grid(self, capsys, tmp_path):
        csv_path = tmp_path / "swaps.csv"
        code = main(
            [
                "swaps",
                "--scale",
                "small",
                "--sizes",
                "6",
                "--workloads",
                "GHZ",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert "GHZ" in capsys.readouterr().out
        assert csv_path.exists()
        assert "total_swaps" in csv_path.read_text().splitlines()[0]

    def test_codesign_command(self, capsys):
        assert main(["codesign", "--scale", "small", "--sizes", "6", "--workloads", "GHZ"]) == 0
        assert "Corral1,1-siswap" in capsys.readouterr().out

    def test_chevron_command(self, capsys):
        assert main(["chevron"]) == 0
        assert "exchange period" in capsys.readouterr().out
