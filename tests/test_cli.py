"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("tables", "swaps", "codesign", "headline", "sensitivity", "chevron"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_run_command_arguments(self):
        args = build_parser().parse_args(
            ["run", "GHZ", "10", "--topology", "Tree", "--basis", "siswap"]
        )
        assert args.workload == "GHZ" and args.size == 10
        assert args.topology == "Tree"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Shor", "10"])


class TestExecution:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Corral1,1" in output

    def test_run_command(self, capsys):
        assert main(["run", "GHZ", "8", "--topology", "Corral1,1", "--basis", "siswap"]) == 0
        output = capsys.readouterr().out
        assert "total_swaps" in output

    def test_swaps_command_with_custom_grid(self, capsys, tmp_path):
        csv_path = tmp_path / "swaps.csv"
        code = main(
            [
                "swaps",
                "--scale",
                "small",
                "--sizes",
                "6",
                "--workloads",
                "GHZ",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert "GHZ" in capsys.readouterr().out
        assert csv_path.exists()
        assert "total_swaps" in csv_path.read_text().splitlines()[0]

    def test_codesign_command(self, capsys):
        assert main(["codesign", "--scale", "small", "--sizes", "6", "--workloads", "GHZ"]) == 0
        assert "Corral1,1-siswap" in capsys.readouterr().out

    def test_chevron_command(self, capsys):
        assert main(["chevron"]) == 0
        assert "exchange period" in capsys.readouterr().out
