"""Tests for the extension CLI sub-commands (frequency, schedule, reliability, qasm)."""

import pytest

from repro.cli import build_parser, main


class TestParserExtensions:
    def test_extension_commands_are_registered(self):
        parser = build_parser()
        for arguments in (
            ["frequency"],
            ["schedule"],
            ["reliability", "GHZ", "8"],
            ["qasm", "GHZ", "4"],
        ):
            args = parser.parse_args(arguments)
            assert args.command == arguments[0]

    def test_run_accepts_new_layout_and_routing_options(self):
        args = build_parser().parse_args(
            ["run", "GHZ", "8", "--layout", "vf2", "--routing", "basic"]
        )
        assert args.layout == "vf2"
        assert args.routing == "basic"

    def test_reliability_requires_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reliability", "GHZ"])


class TestExecutionExtensions:
    def test_frequency_command(self, capsys):
        assert main(["frequency", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "Frequency-crowding study" in output
        assert "SNAIL" in output and "Corral1,1" in output

    def test_schedule_command_with_small_grid(self, capsys):
        code = main(["schedule", "--sizes", "8", "--workloads", "GHZ", "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Duration-aware co-design study" in output
        assert "Heavy-Hex-CX" in output

    def test_reliability_command(self, capsys):
        code = main(["reliability", "GHZ", "8", "--t1-us", "80", "--t2-us", "80"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Reliability ranking" in output
        assert "EPS" in output

    def test_qasm_command_plain_workload(self, capsys):
        assert main(["qasm", "GHZ", "5"]) == 0
        output = capsys.readouterr().out
        assert "OPENQASM 2.0;" in output
        assert "qreg q[5];" in output
        assert "cx q[3],q[4];" in output

    def test_qasm_command_transpiled(self, capsys):
        code = main(["qasm", "GHZ", "6", "--transpile-to", "Tree", "--basis", "siswap"])
        assert code == 0
        output = capsys.readouterr().out
        assert "siswap" in output

    def test_run_command_with_vf2_layout(self, capsys):
        code = main(
            ["run", "GHZ", "8", "--topology", "Hypercube", "--layout", "vf2"]
        )
        assert code == 0
        assert "total_swaps" in capsys.readouterr().out
