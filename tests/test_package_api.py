"""Tests of the top-level package surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for module in (
            "repro.linalg",
            "repro.circuits",
            "repro.gates",
            "repro.simulator",
            "repro.topology",
            "repro.transpiler",
            "repro.decomposition",
            "repro.workloads",
            "repro.snailsim",
            "repro.core",
            "repro.experiments",
            "repro.visualization",
            "repro.bench",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_quickstart_snippet_from_docstring(self):
        """The README / package-docstring quickstart must actually run."""
        from repro import Target, transpile
        from repro.workloads import quantum_volume_circuit

        target = Target.from_names("corral-1-1", "sqiswap")
        result = transpile(quantum_volume_circuit(8, seed=1), target, optimization_level=2)
        assert result.metrics.total_2q > 0
        assert result.metrics.critical_2q <= result.metrics.total_2q

    def test_legacy_backend_shim_still_transpiles(self):
        """Backend.transpile keeps working but warns about the migration."""
        from repro import Backend, get_basis
        from repro.topology import corral_topology
        from repro.workloads import quantum_volume_circuit

        backend = Backend(corral_topology(8, (1, 1)), get_basis("siswap"))
        with pytest.warns(DeprecationWarning, match="Target"):
            result = backend.transpile(quantum_volume_circuit(8, seed=1))
        target_result = backend.to_target().transpile(
            quantum_volume_circuit(8, seed=1), seed=0
        )
        assert result.metrics == target_result.metrics

    def test_main_module_entry_point(self, capsys):
        from repro.__main__ import main

        assert main(["tables"]) == 0
        assert "Table 1" in capsys.readouterr().out
