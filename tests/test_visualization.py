"""Tests for the terminal visualisation helpers."""

import pytest

from repro.core import SweepResult, make_backend, run_point
from repro.topology import square_lattice
from repro.visualization import (
    ascii_bar_chart,
    ascii_line_chart,
    series_to_csv,
    sweep_to_csv,
)


@pytest.fixture(scope="module")
def sample_series():
    return {
        "Heavy-Hex": [(8, 100.0), (16, 400.0)],
        "Corral": [(8, 40.0), (16, 120.0)],
    }


class TestLineChart:
    def test_contains_legend_and_axes(self, sample_series):
        chart = ascii_line_chart(sample_series, title="SWAPs vs size")
        assert "SWAPs vs size" in chart
        assert "o = Heavy-Hex" in chart and "x = Corral" in chart
        assert "8 .. 16" in chart

    def test_marker_positions_reflect_ordering(self, sample_series):
        chart = ascii_line_chart(sample_series, width=30, height=10)
        lines = [line for line in chart.splitlines() if line.startswith("|")]
        # The topmost marker row must belong to Heavy-Hex (the larger series).
        top_markers = next(line for line in lines if line.strip("| ").strip())
        assert "o" in top_markers and "x" not in top_markers

    def test_empty_series(self):
        assert ascii_line_chart({}) == "(no data)"

    def test_single_point_series(self):
        chart = ascii_line_chart({"only": [(5, 5.0)]})
        assert "only" in chart


class TestBarChart:
    def test_bars_scale_with_value(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 4.0}, width=8)
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_title(self):
        assert ascii_bar_chart({"a": 1.0}, title="ratios").startswith("ratios")


class TestCsvExport:
    def test_series_to_csv_row_count(self, sample_series):
        csv_text = series_to_csv(sample_series, x_name="size", y_name="swaps")
        lines = csv_text.strip().splitlines()
        assert lines[0] == "series,size,swaps"
        assert len(lines) == 1 + 4

    def test_sweep_to_csv(self):
        backend = make_backend(square_lattice(4, 4), "cx", name="sq")
        result = SweepResult([run_point("GHZ", 4, backend)])
        csv_text = sweep_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 2
        assert "total_swaps" in lines[0]

    def test_sweep_to_csv_empty(self):
        assert sweep_to_csv(SweepResult([])) == ""

    def test_sweep_to_csv_column_selection(self):
        backend = make_backend(square_lattice(4, 4), "cx", name="sq")
        result = SweepResult([run_point("GHZ", 4, backend)])
        csv_text = sweep_to_csv(result, columns=["topology", "total_2q"])
        header = csv_text.splitlines()[0]
        assert header == "topology,total_2q"
