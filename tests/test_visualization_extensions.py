"""Tests for the schedule Gantt renderer."""

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.scheduling import GateDurations, schedule_asap
from repro.visualization import ascii_schedule
from repro.workloads import build_workload


class TestAsciiSchedule:
    def test_empty_schedule(self):
        schedule = schedule_asap(QuantumCircuit(2), GateDurations())
        assert ascii_schedule(schedule) == "(empty schedule)"

    def test_one_row_per_qubit(self):
        circuit = build_workload("GHZ", 5)
        schedule = schedule_asap(circuit, GateDurations.snail())
        text = ascii_schedule(schedule)
        for qubit in range(5):
            assert f"q{qubit:>3} |" in text

    def test_two_qubit_pulses_marked_with_hash(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        schedule = schedule_asap(circuit, GateDurations(one_qubit=50.0, two_qubit_default=100.0))
        text = ascii_schedule(schedule)
        assert "#" in text
        assert "-" in text

    def test_makespan_and_parallelism_in_header(self):
        circuit = build_workload("QFT", 4)
        schedule = schedule_asap(circuit, GateDurations.cross_resonance())
        header = ascii_schedule(schedule).splitlines()[0]
        assert "makespan" in header and "parallelism" in header

    def test_row_limit_applies(self):
        circuit = build_workload("GHZ", 12)
        schedule = schedule_asap(circuit, GateDurations.snail())
        text = ascii_schedule(schedule, max_rows=4)
        assert "more qubits" in text
