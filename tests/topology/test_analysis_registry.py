"""Tests for topology analysis and the named registry (Tables 1 and 2)."""

import pytest

from repro.experiments.paper_values import TABLE1, TABLE2
from repro.topology import (
    format_properties_table,
    get_topology,
    large_topologies,
    properties_table,
    small_topologies,
    topology_properties,
    available_topologies,
)


class TestAnalysis:
    def test_properties_fields(self, hypercube_4d):
        props = topology_properties(hypercube_4d)
        assert props.num_qubits == 16
        assert props.diameter == 4
        assert props.average_connectivity == pytest.approx(4.0)
        row = props.as_row()
        assert row["qubits"] == 16 and row["avg_connectivity"] == 4.0

    def test_properties_table_and_formatting(self):
        registry = small_topologies()
        rows = properties_table(registry)
        rendered = format_properties_table(rows)
        assert "Corral1,1" in rendered
        assert len(rows) == len(registry)


class TestRegistry:
    def test_small_registry_membership(self):
        names = available_topologies("small")
        for expected in ("Heavy-Hex", "Tree", "Tree-RR", "Corral1,1", "Corral1,2", "Hypercube"):
            assert expected in names

    def test_large_registry_membership(self):
        names = available_topologies("large")
        assert "Lattice+AltDiagonals" in names
        assert "Corral1,1" not in names  # the paper does not scale the corral

    def test_get_topology_and_unknown(self):
        assert get_topology("Tree", "small").num_qubits == 20
        with pytest.raises(KeyError):
            get_topology("NotATopology", "small")

    def test_all_registered_topologies_are_connected(self):
        for registry in (small_topologies(), large_topologies()):
            for name, cmap in registry.items():
                assert cmap.is_connected(), name


class TestAgainstPaperTables:
    """Structural reproduction of paper Tables 1 and 2.

    Exact agreement is asserted for the constructions that are fully
    pinned down by the paper (square lattices, hypercube, Tree, Tree-RR,
    Corrals); the trimmed hex-family instances are only checked loosely
    because the paper does not specify the exact 20/84-qubit patches.
    """

    EXACT_SMALL = ["Square-Lattice", "Tree", "Tree-RR", "Corral1,1", "Corral1,2", "Hypercube"]
    EXACT_LARGE = ["Square-Lattice", "Lattice+AltDiagonals", "Hypercube"]

    @pytest.mark.parametrize("name", EXACT_SMALL)
    def test_table1_exact_rows(self, name):
        registry = small_topologies()
        props = topology_properties(registry[name])
        qubits, diameter, avg_distance, avg_connectivity = TABLE1[name]
        assert props.num_qubits == qubits
        assert props.diameter == pytest.approx(diameter)
        assert props.average_distance == pytest.approx(avg_distance, abs=0.01)
        assert props.average_connectivity == pytest.approx(avg_connectivity, abs=0.01)

    @pytest.mark.parametrize("name", EXACT_LARGE)
    def test_table2_exact_rows(self, name):
        registry = large_topologies()
        props = topology_properties(registry[name])
        qubits, diameter, avg_distance, avg_connectivity = TABLE2[name]
        assert props.num_qubits == qubits
        assert props.diameter == pytest.approx(diameter)
        assert props.average_distance == pytest.approx(avg_distance, abs=0.01)
        assert props.average_connectivity == pytest.approx(avg_connectivity, abs=0.01)

    @pytest.mark.parametrize("name", ["Heavy-Hex", "Hex-Lattice"])
    def test_table1_hex_rows_are_close(self, name):
        registry = small_topologies()
        props = topology_properties(registry[name])
        qubits, diameter, avg_distance, avg_connectivity = TABLE1[name]
        assert props.num_qubits == qubits
        assert props.diameter == pytest.approx(diameter, abs=3)
        assert props.average_connectivity == pytest.approx(avg_connectivity, abs=0.3)

    def test_table2_ordering_of_connectivity(self):
        """The qualitative ordering of Table 2 must hold."""
        registry = large_topologies()
        connectivity = {
            name: topology_properties(cmap).average_connectivity
            for name, cmap in registry.items()
        }
        assert connectivity["Heavy-Hex"] < connectivity["Hex-Lattice"]
        assert connectivity["Hex-Lattice"] < connectivity["Square-Lattice"]
        assert connectivity["Square-Lattice"] < connectivity["Tree"]
        assert connectivity["Tree"] < connectivity["Hypercube"]

    def test_table2_ordering_of_avg_distance(self):
        registry = large_topologies()
        distance = {
            name: topology_properties(cmap).average_distance
            for name, cmap in registry.items()
        }
        assert distance["Hypercube"] < distance["Tree-RR"] <= distance["Tree"]
        assert distance["Tree"] < distance["Square-Lattice"]
        assert distance["Square-Lattice"] < distance["Heavy-Hex"]
