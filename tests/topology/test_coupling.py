"""Tests for CouplingMap."""

import networkx as nx
import numpy as np
import pytest

from repro.topology import CouplingMap


class TestConstruction:
    def test_from_edges(self):
        cmap = CouplingMap([(0, 1), (1, 2)])
        assert cmap.num_qubits == 3
        assert cmap.num_edges() == 2

    def test_explicit_num_qubits_allows_isolated(self):
        cmap = CouplingMap([(0, 1)], num_qubits=4)
        assert cmap.num_qubits == 4
        assert not cmap.is_connected()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(1, 1)])

    def test_from_graph_relabels(self):
        graph = nx.Graph([("a", "b"), ("b", "c")])
        cmap = CouplingMap.from_graph(graph)
        assert cmap.num_qubits == 3
        assert cmap.is_connected()

    def test_full_line_ring_constructors(self):
        assert CouplingMap.full(5).num_edges() == 10
        assert CouplingMap.line(5).num_edges() == 4
        assert CouplingMap.ring(5).num_edges() == 5


class TestQueries:
    def test_neighbors_and_degree(self, grid_4x4):
        assert grid_4x4.degree(0) == 2  # corner
        assert grid_4x4.degree(5) == 4  # interior
        assert set(grid_4x4.neighbors(0)) == {1, 4}

    def test_has_edge_symmetric(self, grid_4x4):
        assert grid_4x4.has_edge(0, 1) and grid_4x4.has_edge(1, 0)
        assert not grid_4x4.has_edge(0, 5)

    def test_distance_matrix_symmetric(self, grid_4x4):
        matrix = grid_4x4.distance_matrix()
        assert np.allclose(matrix, matrix.T)
        assert matrix[0, 15] == 6

    def test_distance(self, grid_4x4):
        assert grid_4x4.distance(0, 3) == 3
        assert grid_4x4.distance(0, 0) == 0

    def test_shortest_path_endpoints(self, grid_4x4):
        path = grid_4x4.shortest_path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == 7

    def test_edges_sorted_and_normalised(self):
        cmap = CouplingMap([(2, 1), (0, 1)])
        assert cmap.edges() == [(0, 1), (1, 2)]


class TestMetrics:
    def test_line_metrics(self):
        line = CouplingMap.line(4)
        assert line.diameter() == 3
        assert line.average_connectivity() == pytest.approx(1.5)

    def test_full_graph_diameter(self):
        assert CouplingMap.full(6).diameter() == 1

    def test_average_distance_uses_paper_convention(self):
        # 4x4 grid: the paper reports AvgD = 2.5 (n^2 denominator).
        from repro.topology import square_lattice

        assert square_lattice(4, 4).average_distance() == pytest.approx(2.5)

    def test_ring_average_connectivity(self):
        assert CouplingMap.ring(8).average_connectivity() == pytest.approx(2.0)


class TestSubsets:
    def test_subgraph_relabels(self, grid_4x4):
        sub = grid_4x4.subgraph([0, 1, 2, 3])
        assert sub.num_qubits == 4
        assert sub.num_edges() == 3

    def test_densest_subset_size(self, grid_4x4):
        subset = grid_4x4.densest_subset(4)
        assert len(subset) == 4

    def test_densest_subset_is_connected(self, grid_4x4):
        subset = grid_4x4.densest_subset(6)
        assert grid_4x4.subgraph(subset).is_connected()

    def test_densest_subset_full_size(self, grid_4x4):
        assert grid_4x4.densest_subset(16) == list(range(16))

    def test_densest_subset_too_large(self, grid_4x4):
        with pytest.raises(ValueError):
            grid_4x4.densest_subset(17)

    def test_densest_subset_prefers_dense_regions(self, corral_16q):
        # In the Corral every 4-qubit module is a clique; a greedy densest
        # subset of size 4 should recover (close to) a clique.
        subset = corral_16q.densest_subset(4)
        internal = corral_16q.subgraph(subset).num_edges()
        assert internal >= 5
