"""Tests for the baseline lattice topologies."""

import pytest

from repro.topology import (
    heavy_hex_lattice,
    hex_lattice,
    hypercube,
    square_lattice,
    square_lattice_alt_diagonals,
    trimmed_hypercube,
)


class TestSquareLattice:
    def test_4x4_shape(self):
        lattice = square_lattice(4, 4)
        assert lattice.num_qubits == 16
        assert lattice.num_edges() == 24
        assert lattice.diameter() == 6

    def test_7x12_matches_paper_table2(self):
        lattice = square_lattice(7, 12)
        assert lattice.num_qubits == 84
        assert lattice.diameter() == 17
        assert lattice.average_connectivity() == pytest.approx(2 * 149 / 84)

    def test_degrees_bounded_by_four(self):
        lattice = square_lattice(5, 5)
        assert max(lattice.degree(q) for q in range(25)) == 4

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            square_lattice(0, 3)


class TestAltDiagonals:
    def test_adds_edges_over_plain_grid(self):
        plain = square_lattice(4, 4)
        diag = square_lattice_alt_diagonals(4, 4)
        assert diag.num_edges() > plain.num_edges()
        assert diag.num_qubits == plain.num_qubits

    def test_84_qubit_connectivity_matches_paper(self):
        diag = square_lattice_alt_diagonals(7, 12)
        assert diag.average_connectivity() == pytest.approx(5.12, abs=0.01)

    def test_contains_diagonal_edge(self):
        diag = square_lattice_alt_diagonals(3, 3)
        assert diag.has_edge(0, 4)  # (0,0) -- (1,1)


class TestHexFamilies:
    @pytest.mark.parametrize("size", [20, 40, 84])
    def test_hex_lattice_size_and_connectivity(self, size):
        lattice = hex_lattice(size)
        assert lattice.num_qubits == size
        assert lattice.is_connected()
        assert lattice.average_connectivity() <= 3.0 + 1e-9

    @pytest.mark.parametrize("size", [20, 84])
    def test_heavy_hex_size_and_sparsity(self, size):
        lattice = heavy_hex_lattice(size)
        assert lattice.num_qubits == size
        assert lattice.is_connected()
        # Heavy-hex is sparser than the plain hexagonal lattice.
        assert lattice.average_connectivity() < hex_lattice(size).average_connectivity() + 1e-9

    def test_heavy_hex_has_degree_two_bridge_qubits(self):
        lattice = heavy_hex_lattice(30)
        degrees = [lattice.degree(q) for q in range(30)]
        assert 2 in degrees
        assert max(degrees) <= 3

    def test_trim_too_small_parent_rejected(self):
        from repro.topology.lattices import _trim_to_size
        import networkx as nx

        with pytest.raises(ValueError):
            _trim_to_size(nx.path_graph(3), 10)


class TestHypercube:
    def test_4d_properties(self):
        cube = hypercube(4)
        assert cube.num_qubits == 16
        assert cube.diameter() == 4
        assert cube.average_connectivity() == pytest.approx(4.0)
        assert cube.average_distance() == pytest.approx(2.0)

    def test_3d_structure(self):
        cube = hypercube(3)
        assert cube.num_edges() == 12
        assert all(cube.degree(q) == 3 for q in range(8))

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hypercube(0)

    def test_trimmed_hypercube_84(self):
        cube = trimmed_hypercube(84)
        assert cube.num_qubits == 84
        assert cube.is_connected()
        assert cube.diameter() == 7
        assert cube.average_connectivity() == pytest.approx(6.0, abs=0.05)

    def test_trimmed_power_of_two_equals_full(self):
        assert trimmed_hypercube(16).num_edges() == hypercube(4).num_edges()
