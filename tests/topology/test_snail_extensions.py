"""Tests for the future-work SNAIL topologies (heterogeneous corral, corral lattice)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import allocate_frequencies, snail_modulator
from repro.topology import (
    corral_lattice_topology,
    corral_topology,
    heterogeneous_corral_topology,
    topology_properties,
)
from repro.topology.snail_extensions import (
    corral_lattice_modules,
    heterogeneous_corral_modules,
)
from repro.transpiler import transpile
from repro.workloads import build_workload


class TestHeterogeneousCorral:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            heterogeneous_corral_modules(1)
        with pytest.raises(ValueError):
            heterogeneous_corral_modules(4, qubits_per_module=7)
        with pytest.raises(ValueError):
            heterogeneous_corral_modules(4, boundary_span=5)
        with pytest.raises(ValueError):
            heterogeneous_corral_modules(4, qubits_per_module=6, boundary_span=4)

    def test_qubit_count(self):
        topology = heterogeneous_corral_topology(num_modules=4, qubits_per_module=4)
        assert topology.num_qubits == 16

    def test_every_snail_stays_within_six_modes(self):
        for module in heterogeneous_corral_modules(6):
            assert 2 <= len(module.qubits) <= 6

    def test_connected_and_regular_degree_bounds(self):
        topology = heterogeneous_corral_topology(num_modules=5)
        assert topology.is_connected()
        degrees = [topology.degree(q) for q in range(topology.num_qubits)]
        assert max(degrees) <= 7

    def test_module_cliques_present(self):
        topology = heterogeneous_corral_topology(num_modules=3)
        # Qubits 0-3 form the first module: all-to-all coupled.
        for a in range(4):
            for b in range(a + 1, 4):
                assert topology.has_edge(a, b)

    def test_boundary_couples_neighbouring_modules(self):
        topology = heterogeneous_corral_topology(num_modules=3)
        # Last two qubits of module 0 couple to the first two of module 1.
        assert topology.has_edge(2, 4)
        assert topology.has_edge(3, 5)

    def test_snail_frequency_budget_allocates_it(self):
        topology = heterogeneous_corral_topology(num_modules=5)
        assert allocate_frequencies(topology, snail_modulator()).is_feasible

    def test_diameter_grows_with_ring_size(self):
        small = topology_properties(heterogeneous_corral_topology(num_modules=3))
        large = topology_properties(heterogeneous_corral_topology(num_modules=8))
        assert large.diameter > small.diameter

    def test_transpiles_quantum_volume(self):
        topology = heterogeneous_corral_topology(num_modules=4)
        result = transpile(build_workload("QuantumVolume", 10, seed=3), topology, basis_name="siswap")
        assert result.metrics.total_2q > 0

    @given(num_modules=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_always_connected(self, num_modules):
        assert heterogeneous_corral_topology(num_modules=num_modules).is_connected()


class TestCorralLattice:
    def test_rejects_small_grids(self):
        with pytest.raises(ValueError):
            corral_lattice_modules(1, 3)
        with pytest.raises(ValueError):
            corral_lattice_modules(3, 1)

    def test_qubit_count_is_two_per_post(self):
        topology = corral_lattice_topology(3, 4)
        assert topology.num_qubits == 2 * 3 * 4

    def test_every_post_couples_at_most_four_rails(self):
        for module in corral_lattice_modules(4, 4):
            assert len(module.qubits) == 4

    def test_connected(self):
        assert corral_lattice_topology(3, 3).is_connected()

    def test_bounded_degree_as_it_scales(self):
        """The scaling property the paper wants: SNAIL mode count stays fixed."""
        small = corral_lattice_topology(2, 2)
        large = corral_lattice_topology(4, 5)
        max_degree_small = max(small.degree(q) for q in range(small.num_qubits))
        max_degree_large = max(large.degree(q) for q in range(large.num_qubits))
        assert max_degree_large <= max(max_degree_small, 6)

    def test_diameter_scales_slower_than_ring_corral(self):
        """Laying corrals out in 2-D shortens worst-case paths vs one big ring."""
        ring = corral_topology(18, (1, 1))          # 36 qubits on one ring
        lattice = corral_lattice_topology(4, 5)     # 40 qubits on a torus
        assert topology_properties(lattice).diameter < topology_properties(ring).diameter

    def test_snail_frequency_budget_allocates_it(self):
        topology = corral_lattice_topology(4, 4)
        assert allocate_frequencies(topology, snail_modulator()).is_feasible

    def test_transpiles_qaoa(self):
        topology = corral_lattice_topology(3, 3)
        result = transpile(build_workload("QAOAVanilla", 10, seed=5), topology, basis_name="siswap")
        assert result.metrics.total_2q > 0

    @given(rows=st.integers(min_value=2, max_value=5), cols=st.integers(min_value=2, max_value=5))
    @settings(max_examples=12, deadline=None)
    def test_torus_is_always_connected_with_expected_size(self, rows, cols):
        topology = corral_lattice_topology(rows, cols)
        assert topology.num_qubits == 2 * rows * cols
        assert topology.is_connected()
