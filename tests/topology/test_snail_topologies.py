"""Tests for the SNAIL Tree and Corral topologies."""

import pytest

from repro.topology import (
    SnailModule,
    corral_modules,
    corral_topology,
    modules_to_coupling_map,
    tree_modules,
    tree_round_robin_topology,
    tree_topology,
)


class TestSnailModule:
    def test_clique_edges(self):
        module = SnailModule((0, 1, 2))
        assert sorted(module.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_frequency_crowding_limit(self):
        with pytest.raises(ValueError):
            SnailModule(range(7))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            SnailModule((3,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            SnailModule((1, 1, 2))

    def test_union_of_modules(self):
        cmap = modules_to_coupling_map(
            [SnailModule((0, 1, 2)), SnailModule((2, 3, 4))]
        )
        assert cmap.num_qubits == 5
        assert cmap.has_edge(0, 1) and cmap.has_edge(2, 3)
        assert not cmap.has_edge(0, 4)


class TestTree:
    def test_20_qubit_tree_matches_paper_table1(self):
        tree = tree_topology(levels=2, arity=4)
        assert tree.num_qubits == 20
        assert tree.diameter() == 3
        assert tree.average_connectivity() == pytest.approx(4.6)
        assert tree.average_distance() == pytest.approx(2.15, abs=0.01)

    def test_84_qubit_tree_structure(self):
        tree = tree_topology(levels=3, arity=4)
        assert tree.num_qubits == 84
        assert tree.diameter() == 5
        assert tree.is_connected()

    def test_router_qubits_form_clique(self):
        tree = tree_topology(levels=2, arity=4)
        for a in range(4):
            for b in range(a + 1, 4):
                assert tree.has_edge(a, b)

    def test_module_membership(self):
        modules = tree_modules(levels=2, arity=4)
        # One router module plus one module per router qubit.
        assert len(modules) == 5
        assert all(len(m.qubits) <= 6 for m in modules)

    def test_leaf_degree_is_arity(self):
        tree = tree_topology(levels=2, arity=4)
        leaf_degrees = {tree.degree(q) for q in range(4, 20)}
        assert leaf_degrees == {4}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            tree_topology(levels=0)
        with pytest.raises(ValueError):
            tree_topology(arity=1)


class TestTreeRoundRobin:
    def test_20_qubit_tree_rr_matches_paper_table1(self):
        tree = tree_round_robin_topology(levels=2, arity=4)
        assert tree.num_qubits == 20
        assert tree.diameter() == 3
        assert tree.average_connectivity() == pytest.approx(4.6)
        assert tree.average_distance() == pytest.approx(2.03, abs=0.01)

    def test_round_robin_spreads_router_links(self):
        tree = tree_round_robin_topology(levels=2, arity=4)
        # Each router qubit j is linked to exactly one qubit of each module.
        for router in range(4):
            module_children = [q for q in range(4, 20) if tree.has_edge(router, q)]
            assert len(module_children) == 4

    def test_rr_average_distance_not_worse_than_tree(self):
        tree = tree_topology(levels=2, arity=4)
        tree_rr = tree_round_robin_topology(levels=2, arity=4)
        assert tree_rr.average_distance() <= tree.average_distance() + 1e-9

    def test_84_qubit_tree_rr(self):
        tree = tree_round_robin_topology(levels=3, arity=4)
        assert tree.num_qubits == 84
        assert tree.is_connected()


class TestCorral:
    def test_corral_11_matches_paper_table1(self):
        corral = corral_topology(8, (1, 1))
        assert corral.num_qubits == 16
        assert corral.diameter() == 4
        assert corral.average_connectivity() == pytest.approx(5.0)
        assert corral.average_distance() == pytest.approx(2.06, abs=0.01)

    def test_corral_12_instance_matches_paper_table1(self):
        # Registry uses strides (1, 3) which reproduces the published row.
        corral = corral_topology(8, (1, 3))
        assert corral.diameter() == 2
        assert corral.average_distance() == pytest.approx(1.5)
        assert corral.average_connectivity() == pytest.approx(6.0)

    def test_every_post_couples_at_most_six(self):
        for strides in [(1, 1), (1, 2), (1, 3)]:
            for module in corral_modules(8, strides):
                assert 2 <= len(module.qubits) <= 6

    def test_corral_scales_with_posts(self):
        assert corral_topology(10, (1, 1)).num_qubits == 20
        assert corral_topology(12, (1, 2)).num_qubits == 24

    def test_all_qubits_connected(self):
        for strides in [(1, 1), (1, 2), (1, 3)]:
            assert corral_topology(8, strides).is_connected()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            corral_topology(2, (1, 1))
        with pytest.raises(ValueError):
            corral_topology(8, (0, 1))
        with pytest.raises(ValueError):
            corral_topology(8, (1, 9))
