"""Tests for the basis-translation pass."""

import pytest

from repro.circuits import QuantumCircuit
from repro.decomposition import DecompositionCache, cx_basis, sqiswap_basis, syc_basis
from repro.linalg.random import random_unitary
from repro.simulator import circuits_equivalent
from repro.transpiler import BasisTranslation, BasisTranslationError, PropertySet
from repro.workloads import quantum_volume_circuit


class TestCountMode:
    def test_cx_passes_through_in_cx_basis(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        translated = BasisTranslation(cx_basis()).run(circuit, PropertySet())
        assert translated.count_ops() == {"cx": 1}

    def test_swap_costs_three_in_cx_and_siswap(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        for basis, name in ((cx_basis(), "cx"), (sqiswap_basis(), "siswap")):
            translated = BasisTranslation(basis).run(circuit, PropertySet())
            assert translated.two_qubit_gate_count() == 3, name

    def test_cx_costs_two_siswap(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        translated = BasisTranslation(sqiswap_basis()).run(circuit, PropertySet())
        assert translated.count_ops() == {"siswap": 2}

    def test_random_su4_costs_three_cx(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, 11), (0, 1))
        translated = BasisTranslation(cx_basis()).run(circuit, PropertySet())
        assert translated.two_qubit_gate_count() == 3

    def test_random_su4_costs_four_syc(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, 12), (0, 1))
        translated = BasisTranslation(syc_basis()).run(circuit, PropertySet())
        assert translated.two_qubit_gate_count() == 4

    def test_one_qubit_gates_untouched(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rz(0.2, 1).cx(0, 1)
        translated = BasisTranslation(sqiswap_basis()).run(circuit, PropertySet())
        counts = translated.count_ops()
        assert counts["h"] == 1 and counts["rz"] == 1

    def test_basis_gate_count_recorded(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).swap(1, 2)
        properties = PropertySet()
        BasisTranslation(sqiswap_basis()).run(circuit, properties)
        assert properties["basis_gate_count"] == 2 + 3

    def test_translated_gates_act_on_same_pair(self):
        circuit = QuantumCircuit(4)
        circuit.cx(2, 3)
        translated = BasisTranslation(sqiswap_basis()).run(circuit, PropertySet())
        pairs = {inst.qubits for inst in translated if inst.is_two_qubit}
        assert pairs == {(2, 3)}

    def test_induced_flag_propagates(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1, induced=True)
        translated = BasisTranslation(cx_basis()).run(circuit, PropertySet())
        assert all(inst.induced for inst in translated if inst.is_two_qubit)

    def test_coverage_cache_reused(self):
        circuit = quantum_volume_circuit(4, seed=1)
        cache = DecompositionCache()
        translation = BasisTranslation(sqiswap_basis(), cache=cache)
        translation.run(circuit, PropertySet())
        # Each distinct SU(4) block maps to one count entry, and a second
        # run over the same circuit is served entirely from the cache.
        counts = cache.stats()["counts"]
        assert counts.currsize == circuit.two_qubit_gate_count()
        BasisTranslation(sqiswap_basis(), cache=cache).run(circuit, PropertySet())
        assert cache.stats()["counts"].currsize == counts.currsize
        assert cache.stats()["counts"].hits >= circuit.two_qubit_gate_count()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BasisTranslation(cx_basis(), mode="exact")


class TestSynthesisMode:
    @pytest.mark.parametrize("basis_factory", [cx_basis, sqiswap_basis])
    def test_named_gate_synthesis_is_equivalent(self, basis_factory):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        translated = BasisTranslation(basis_factory(), mode="synthesis").run(
            circuit, PropertySet()
        )
        assert circuits_equivalent(circuit, translated, atol=1e-4)

    @pytest.mark.slow
    def test_random_unitary_synthesis_is_equivalent(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, 21), (0, 1))
        translated = BasisTranslation(sqiswap_basis(), mode="synthesis").run(
            circuit, PropertySet()
        )
        assert circuits_equivalent(circuit, translated, atol=1e-4)

    def test_synthesis_respects_coverage_counts(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        translated = BasisTranslation(sqiswap_basis(), mode="synthesis").run(
            circuit, PropertySet()
        )
        assert translated.two_qubit_gate_count() == 2

    def test_unreachable_fidelity_raises(self):
        # With a single application allowed, a generic SU(4) cannot be
        # synthesised to the requested fidelity.
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, 22), (0, 1))
        translation = BasisTranslation(
            sqiswap_basis(), mode="synthesis", max_applications=1
        )
        with pytest.raises(BasisTranslationError):
            translation.run(circuit, PropertySet())
