"""Tests for the gate-cancellation pass."""


from repro.circuits import QuantumCircuit
from repro.simulator import circuits_equivalent
from repro.transpiler import PropertySet
from repro.transpiler.passes.cancellation import CancelAdjacentInverses


class TestCancellation:
    def test_adjacent_cx_pair_removed(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        properties = PropertySet()
        cleaned = CancelAdjacentInverses().run(circuit, properties)
        assert cleaned.size() == 0
        assert properties["cancelled_gates"] == 2

    def test_adjacent_swap_pair_removed(self):
        circuit = QuantumCircuit(3)
        circuit.swap(1, 2).swap(1, 2).cx(0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert cleaned.count_ops() == {"cx": 1}

    def test_intervening_gate_blocks_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.3, 1).cx(0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert cleaned.count_ops()["cx"] == 2

    def test_spectator_gate_does_not_block(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).h(2).cx(0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert "cx" not in cleaned.count_ops()
        assert cleaned.count_ops()["h"] == 1

    def test_reversed_control_target_not_cancelled(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert cleaned.count_ops()["cx"] == 2

    def test_parameterised_inverse_pair_removed(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.7, 0, 1)
        circuit.rzz(-0.7, 0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert cleaned.size() == 0

    def test_parameterised_non_inverse_pair_kept(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.7, 0, 1)
        circuit.rzz(0.7, 0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert cleaned.size() == 2

    def test_semantics_preserved(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(0, 1).swap(1, 2).swap(1, 2).cx(1, 2).x(0).x(0)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        assert circuits_equivalent(circuit, cleaned)
        assert cleaned.size() < circuit.size()

    def test_barriers_preserved(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).barrier().cx(0, 1)
        cleaned = CancelAdjacentInverses().run(circuit, PropertySet())
        # The barrier is kept and (being a scheduling hint, not a gate) does
        # not prevent cancellation of the pair around it.
        assert "barrier" in cleaned.count_ops()
