"""Tests for CommutativeCancellation and BasicRouting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import CXGate, CZGate, RZGate, XGate
from repro.linalg.fidelity import hilbert_schmidt_fidelity
from repro.topology import CouplingMap, get_topology
from repro.transpiler import transpile
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes.commutation import (
    CommutativeCancellation,
    instructions_commute,
)
from repro.transpiler.passes.layout_passes import TrivialLayout
from repro.transpiler.passes.routing_extra import BasicRouting
from repro.workloads import build_workload


class TestCommutationPredicate:
    def test_disjoint_gates_commute(self):
        assert instructions_commute(
            Instruction(CXGate(), (0, 1)), Instruction(CXGate(), (2, 3))
        )

    def test_rz_commutes_with_cx_control(self):
        assert instructions_commute(
            Instruction(RZGate(0.3), (0,)), Instruction(CXGate(), (0, 1))
        )

    def test_rz_does_not_commute_with_cx_target(self):
        assert not instructions_commute(
            Instruction(RZGate(0.3), (1,)), Instruction(CXGate(), (0, 1))
        )

    def test_x_commutes_with_cx_target(self):
        assert instructions_commute(
            Instruction(XGate(), (1,)), Instruction(CXGate(), (0, 1))
        )

    def test_cz_gates_commute_with_each_other(self):
        assert instructions_commute(
            Instruction(CZGate(), (0, 1)), Instruction(CZGate(), (1, 2))
        )

    def test_overlapping_cx_do_not_commute(self):
        assert not instructions_commute(
            Instruction(CXGate(), (0, 1)), Instruction(CXGate(), (1, 2))
        )


class TestCommutativeCancellation:
    def run_pass(self, circuit: QuantumCircuit) -> QuantumCircuit:
        return CommutativeCancellation().run(circuit, PropertySet())

    def test_adjacent_inverse_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        assert len(self.run_pass(circuit)) == 0

    def test_pair_separated_by_commuting_gate_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.7, 0)  # commutes with the CX control
        circuit.cx(0, 1)
        result = self.run_pass(circuit)
        assert result.count_ops() == {"rz": 1}

    def test_pair_blocked_by_non_commuting_gate_survives(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.x(0)  # does not commute with the CX control
        circuit.cx(0, 1)
        result = self.run_pass(circuit)
        assert result.count_ops().get("cx") == 2

    def test_swap_pair_separated_by_unrelated_gate_cancels(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1)
        circuit.cx(1, 2)
        circuit.swap(0, 1)
        # CX(1,2) does not commute with SWAP(0,1): they share qubit 1 and
        # exchanging it matters, so the SWAPs must survive.
        result = self.run_pass(circuit)
        assert result.count_ops().get("swap") == 2

    def test_swap_pair_on_untouched_qubits_cancels(self):
        circuit = QuantumCircuit(4)
        circuit.swap(0, 1)
        circuit.cx(2, 3)
        circuit.swap(0, 1)
        result = self.run_pass(circuit)
        assert "swap" not in result.count_ops()

    def test_rotation_inverse_pair_cancels(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.4, 0)
        circuit.rz(-0.4, 0)
        assert len(self.run_pass(circuit)) == 0

    def test_property_records_cancelled_count(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        properties = PropertySet()
        CommutativeCancellation().run(circuit, properties)
        assert properties["commutative_cancelled"] == 2

    def test_barriers_block_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.cx(0, 1)
        result = self.run_pass(circuit)
        assert result.count_ops().get("cx") == 2

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_pass_preserves_circuit_unitary(self, seed):
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(3)
        for _ in range(12):
            kind = rng.integers(4)
            if kind == 0:
                circuit.rz(float(rng.uniform(-np.pi, np.pi)), int(rng.integers(3)))
            elif kind == 1:
                circuit.h(int(rng.integers(3)))
            elif kind == 2:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cz(int(a), int(b))
        optimized = self.run_pass(circuit)
        fidelity = hilbert_schmidt_fidelity(circuit.to_unitary(), optimized.to_unitary())
        assert fidelity == pytest.approx(1.0, abs=1e-9)


class TestBasicRouting:
    def route(self, circuit: QuantumCircuit, device: CouplingMap):
        properties = PropertySet()
        TrivialLayout(device).run(circuit, properties)
        routed = BasicRouting(device).run(circuit, properties)
        return routed, properties

    def test_adjacent_gate_needs_no_swaps(self):
        device = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        routed, properties = self.route(circuit, device)
        assert properties["routing_swaps"] == 0
        assert routed.swap_count(induced_only=True) == 0

    def test_distant_gate_inserts_path_swaps(self):
        device = CouplingMap.line(5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        routed, properties = self.route(circuit, device)
        assert properties["routing_swaps"] == 3
        # After routing every 2Q gate acts on coupled qubits.
        for instruction in routed:
            if instruction.is_two_qubit:
                assert device.has_edge(*instruction.qubits)

    def test_single_qubit_gates_pass_through(self):
        device = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.h(2)
        routed, _ = self.route(circuit, device)
        assert routed.count_ops() == {"h": 1}

    def test_final_layout_tracks_swaps(self):
        device = CouplingMap.line(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        _, properties = self.route(circuit, device)
        final = properties["final_layout"]
        initial = properties["layout"]
        assert final.to_dict() != initial.to_dict()

    def test_basic_routing_available_via_transpile(self):
        device = get_topology("Square-Lattice", scale="small")
        circuit = build_workload("QFT", 8)
        result = transpile(circuit, device, basis_name="cx", routing_method="basic")
        assert result.metrics.total_swaps > 0

    def test_sabre_not_worse_than_basic_on_average(self):
        """The ablation claim: the lookahead router uses no more SWAPs than the naive one."""
        device = get_topology("Square-Lattice", scale="small")
        circuit = build_workload("QuantumVolume", 12, seed=5)
        basic = transpile(circuit, device, basis_name="cx", routing_method="basic")
        sabre = transpile(circuit, device, basis_name="cx", routing_method="sabre")
        assert sabre.metrics.total_swaps <= basic.metrics.total_swaps * 1.5

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_routed_circuit_preserves_two_qubit_gate_count(self, seed):
        device = get_topology("Heavy-Hex", scale="small")
        circuit = build_workload("QuantumVolume", 8, seed=seed)
        properties = PropertySet()
        TrivialLayout(device).run(circuit, properties)
        routed = BasicRouting(device).run(circuit, properties)
        original_2q = circuit.two_qubit_gate_count()
        routed_non_swap = sum(
            1 for inst in routed if inst.is_two_qubit and not (inst.name == "swap" and inst.induced)
        )
        assert routed_non_swap == original_2q
