"""Tests for the end-to-end transpile() entry point."""

import pytest

from repro.decomposition import get_basis, sqiswap_basis
from repro.topology import hypercube, square_lattice
from repro.transpiler import (
    PassManager,
    PropertySet,
    TranspileMetrics,
    build_pass_manager,
    format_metrics_table,
    transpile,
)
from repro.workloads import ghz_circuit, quantum_volume_circuit


class TestTranspile:
    def test_metrics_fields_populated(self, grid_4x4):
        result = transpile(quantum_volume_circuit(6, seed=1), grid_4x4, basis_name="cx", seed=3)
        metrics = result.metrics
        assert metrics.circuit_qubits == 6
        assert metrics.topology == grid_4x4.name
        assert metrics.basis == "cx"
        assert metrics.total_2q >= metrics.critical_2q > 0
        assert metrics.total_swaps >= metrics.critical_swaps >= 0
        assert metrics.depth > 0

    def test_final_circuit_respects_topology(self, grid_4x4):
        result = transpile(quantum_volume_circuit(8, seed=2), grid_4x4, basis_name="siswap")
        for instruction in result.circuit:
            if instruction.is_two_qubit:
                assert grid_4x4.has_edge(*instruction.qubits)

    def test_final_circuit_uses_only_basis_2q_gates(self, grid_4x4):
        result = transpile(quantum_volume_circuit(8, seed=2), grid_4x4, basis_name="siswap")
        two_qubit_names = {
            inst.name for inst in result.circuit if inst.is_two_qubit
        }
        assert two_qubit_names == {"siswap"}

    def test_basis_object_can_be_passed_directly(self, grid_4x4):
        result = transpile(ghz_circuit(5), grid_4x4, basis=sqiswap_basis())
        assert result.metrics.basis == "siswap"

    def test_oversized_circuit_rejected(self, grid_4x4):
        with pytest.raises(ValueError):
            transpile(ghz_circuit(20), grid_4x4)

    def test_weighted_duration_reflects_pulse_length(self, grid_4x4):
        circuit = quantum_volume_circuit(6, seed=5)
        cx_result = transpile(circuit, grid_4x4, basis_name="cx", seed=1)
        sis_result = transpile(circuit, grid_4x4, basis_name="siswap", seed=1)
        # Identical routing (same seed/layout); each sqrt(iSWAP) pulse is
        # half an iSWAP so the weighted duration must be smaller than the
        # plain critical-path count.
        assert sis_result.metrics.weighted_duration < sis_result.metrics.critical_2q
        assert cx_result.metrics.weighted_duration == pytest.approx(
            float(cx_result.metrics.critical_2q)
        )

    def test_unknown_methods_rejected(self, grid_4x4):
        with pytest.raises(ValueError):
            transpile(ghz_circuit(4), grid_4x4, layout_method="best")
        with pytest.raises(ValueError):
            transpile(ghz_circuit(4), grid_4x4, routing_method="magic")

    def test_alternative_routing_and_layout(self, grid_4x4):
        result = transpile(
            quantum_volume_circuit(6, seed=7),
            grid_4x4,
            layout_method="interaction",
            routing_method="stochastic",
        )
        assert result.metrics.routing_method == "stochastic"
        assert result.metrics.layout_method == "interaction"

    def test_richer_topology_gives_fewer_2q_gates(self):
        """The co-design effect on a denser topology (paper Fig. 13)."""
        circuit = quantum_volume_circuit(12, seed=4)
        lattice_result = transpile(circuit, square_lattice(4, 4), basis_name="cx", seed=1)
        corral_result = transpile(circuit, hypercube(4), basis_name="siswap", seed=1)
        assert corral_result.metrics.total_2q < lattice_result.metrics.total_2q

    def test_pass_manager_construction(self, grid_4x4):
        manager = build_pass_manager(grid_4x4, get_basis("cx"))
        assert isinstance(manager, PassManager)
        assert len(manager.passes) == 4

    def test_pass_timings_recorded(self, grid_4x4):
        result = transpile(ghz_circuit(5), grid_4x4)
        timings = result.properties["pass_timings"]
        assert "sabre_routing" in timings and "basis_translation" in timings


class TestMetricsFormatting:
    def test_as_dict_flattens_extra(self):
        metrics = TranspileMetrics(
            circuit_name="c",
            circuit_qubits=4,
            topology="t",
            basis="cx",
            total_swaps=1,
            critical_swaps=1,
            total_2q=2,
            critical_2q=2,
            weighted_duration=2.0,
            total_gates=5,
            depth=4,
            extra={"workload": "GHZ"},
        )
        record = metrics.as_dict()
        assert record["workload"] == "GHZ"
        assert "extra" not in record

    def test_format_table(self, grid_4x4):
        result = transpile(ghz_circuit(4), grid_4x4)
        table = format_metrics_table([result.metrics])
        assert "total_swaps" in table and grid_4x4.name in table

    def test_format_empty(self):
        assert format_metrics_table([]) == "(no data)"


class TestPassManagerInfra:
    def test_property_set_require(self):
        properties = PropertySet()
        with pytest.raises(KeyError):
            properties.require("layout")
        properties["layout"] = 1
        assert properties.require("layout") == 1

    def test_custom_pass_sequence(self, grid_4x4):
        from repro.transpiler import DenseLayout, SabreRouting

        manager = PassManager([DenseLayout(grid_4x4), SabreRouting(grid_4x4)])
        properties = PropertySet()
        routed = manager.run(ghz_circuit(6), properties)
        assert properties["final_circuit"] is routed
