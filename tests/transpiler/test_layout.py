"""Tests for the Layout object."""

import pytest

from repro.transpiler import Layout


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout[0] == 0 and layout[2] == 2
        assert len(layout) == 3

    def test_from_physical_list(self):
        layout = Layout.from_physical_list([5, 2, 7])
        assert layout[0] == 5 and layout[1] == 2 and layout[2] == 7
        assert layout.virtual(7) == 2

    def test_assign_conflict(self):
        layout = Layout({0: 1})
        with pytest.raises(ValueError):
            layout.assign(1, 1)

    def test_reassign_virtual_frees_old_physical(self):
        layout = Layout({0: 1})
        layout.assign(0, 3)
        assert layout.virtual(1) is None
        assert layout[0] == 3

    def test_contains_and_lists(self):
        layout = Layout({0: 4, 1: 2})
        assert 0 in layout and 5 not in layout
        assert layout.virtual_qubits() == [0, 1]
        assert layout.physical_qubits() == [2, 4]

    def test_copy_independent(self):
        layout = Layout({0: 0, 1: 1})
        clone = layout.copy()
        clone.swap_physical(0, 1)
        assert layout[0] == 0 and clone[0] == 1

    def test_swap_physical_both_occupied(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout[0] == 1 and layout[1] == 0

    def test_swap_physical_one_empty(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 5)
        assert layout[0] == 5
        assert layout.virtual(0) is None

    def test_equality_and_to_dict(self):
        assert Layout({0: 1}) == Layout({0: 1})
        assert Layout({0: 1}) != Layout({0: 2})
        assert Layout({0: 1}).to_dict() == {0: 1}
