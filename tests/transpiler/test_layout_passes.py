"""Tests for the layout-selection passes."""

import pytest

from repro.circuits import QuantumCircuit
from repro.topology import CouplingMap
from repro.transpiler import (
    DenseLayout,
    InteractionGraphLayout,
    PropertySet,
    TrivialLayout,
)
from repro.workloads import ghz_circuit, quantum_volume_circuit


class TestTrivialLayout:
    def test_identity_mapping(self, grid_4x4):
        properties = PropertySet()
        circuit = ghz_circuit(5)
        TrivialLayout(grid_4x4).run(circuit, properties)
        layout = properties["layout"]
        assert all(layout[q] == q for q in range(5))

    def test_rejects_oversized_circuit(self, grid_4x4):
        with pytest.raises(ValueError):
            TrivialLayout(grid_4x4).run(QuantumCircuit(17), PropertySet())


class TestDenseLayout:
    def test_layout_covers_all_virtual_qubits(self, grid_4x4):
        properties = PropertySet()
        circuit = quantum_volume_circuit(8, seed=1)
        DenseLayout(grid_4x4).run(circuit, properties)
        layout = properties["layout"]
        assert sorted(layout.virtual_qubits()) == list(range(8))
        assert len(set(layout.physical_qubits())) == 8

    def test_chosen_subset_is_connected(self, grid_4x4):
        properties = PropertySet()
        DenseLayout(grid_4x4).run(quantum_volume_circuit(6, seed=0), properties)
        physical = properties["layout"].physical_qubits()
        assert grid_4x4.subgraph(physical).is_connected()

    def test_dense_layout_prefers_high_degree_region(self, tree_20q):
        # The Tree's router qubits (0-3) have the highest connectivity; a
        # 5-qubit dense layout should include at least some of them.
        properties = PropertySet()
        DenseLayout(tree_20q).run(quantum_volume_circuit(5, seed=2), properties)
        physical = set(properties["layout"].physical_qubits())
        assert physical & {0, 1, 2, 3}

    def test_rejects_oversized_circuit(self, grid_4x4):
        with pytest.raises(ValueError):
            DenseLayout(grid_4x4).run(QuantumCircuit(20), PropertySet())

    def test_records_coupling_map(self, grid_4x4):
        properties = PropertySet()
        DenseLayout(grid_4x4).run(ghz_circuit(4), properties)
        assert properties["coupling_map"] is grid_4x4


class TestInteractionGraphLayout:
    def test_all_virtual_qubits_placed(self, grid_4x4):
        properties = PropertySet()
        circuit = quantum_volume_circuit(7, seed=3)
        InteractionGraphLayout(grid_4x4, seed=1).run(circuit, properties)
        layout = properties["layout"]
        assert len(layout) == 7
        assert len(set(layout.physical_qubits())) == 7

    def test_chain_circuit_placed_along_adjacent_qubits(self):
        # A GHZ chain on a line topology should require mostly adjacent
        # placements when using the interaction-aware layout.
        line = CouplingMap.line(8)
        properties = PropertySet()
        circuit = ghz_circuit(8)
        InteractionGraphLayout(line, seed=0).run(circuit, properties)
        layout = properties["layout"]
        distance = line.distance_matrix()
        total = sum(
            distance[layout[q], layout[q + 1]] for q in range(7)
        )
        assert total <= 14  # worst case would be far larger for random placement

    def test_oversized_circuit_rejected(self):
        with pytest.raises(ValueError):
            InteractionGraphLayout(CouplingMap.line(3)).run(QuantumCircuit(4), PropertySet())
