"""Property-based validity suite for *every* registered layout pass.

The silent-invalid-layout class of bug — a pass emitting a partial or
non-injective layout, or one the router then cannot legalise — is pinned
here for all current **and future** passes: the suite enumerates the
``layout`` stage of the pass registry at run time, so registering a new
pass automatically subjects it to the same contract:

* the recorded layout is **complete** (every circuit qubit mapped) and
  **injective** (distinct physical seats, all on the device);
* routing the circuit from that layout yields a physical circuit in which
  every coupling-needing gate (the shared DAG's ``coupling_mask``) acts on
  adjacent physical qubits.

Inputs are seeded random circuits crossed with the paper's coupling-map
families, driven by hypothesis.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.gates import Barrier, CCXGate, CXGate, CZGate, HGate, RZGate, SwapGate, XGate
from repro.topology import CouplingMap, corral_topology, square_lattice
from repro.transpiler import PropertySet
from repro.transpiler.registry import available_passes, make_pass
from repro.transpiler.target import make_target

DEVICES = [
    make_target(CouplingMap.line(9), "siswap", name="line-9"),
    make_target(CouplingMap.ring(10), "siswap", name="ring-10"),
    make_target(square_lattice(3, 3), "siswap", name="lattice-3x3"),
    make_target(corral_topology(6, (1, 1)), "siswap", name="corral-12"),
    make_target(CouplingMap.full(8), "siswap", name="full-8"),
]


def random_circuit(num_qubits: int, seed: int, with_three_qubit: bool) -> QuantumCircuit:
    """A seeded random circuit mixing 1Q/2Q gates, barriers and idle qubits."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random-{num_qubits}-{seed}")
    for _ in range(int(rng.integers(1, 4 * num_qubits + 2))):
        roll = rng.random()
        if roll < 0.35:
            gate = HGate() if rng.random() < 0.5 else XGate()
            circuit.append(gate, (int(rng.integers(num_qubits)),))
        elif roll < 0.45:
            circuit.append(RZGate(float(rng.random())), (int(rng.integers(num_qubits)),))
        elif roll < 0.55 and num_qubits >= 2:
            circuit.append(Barrier(num_qubits), tuple(range(num_qubits)))
        elif roll < 0.92 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            gate = [CXGate(), CZGate(), SwapGate()][int(rng.integers(3))]
            circuit.append(gate, (int(a), int(b)))
        elif with_three_qubit and num_qubits >= 3:
            a, b, c = rng.choice(num_qubits, size=3, replace=False)
            circuit.append(CCXGate(), (int(a), int(b), int(c)))
    return circuit


def assert_complete_injective(layout, num_virtual: int, num_physical: int) -> None:
    mapping = layout.to_dict()
    assert sorted(mapping) == list(range(num_virtual)), "layout must be complete"
    seats = list(mapping.values())
    assert len(set(seats)) == len(seats), "layout must be injective"
    assert all(0 <= seat < num_physical for seat in seats), "seats must exist"


def assert_routed_respects_coupling(routed, coupling_map) -> None:
    """Every coupling-needing gate must act on adjacent physical qubits."""
    dag = DAGCircuit(routed)
    pairs = dag.qubit_pairs[dag.coupling_mask]
    adjacency = coupling_map.adjacency_matrix()
    assert bool(np.all(adjacency[pairs[:, 0], pairs[:, 1]])) if len(pairs) else True


@settings(max_examples=40, deadline=None)
@given(
    device_index=st.integers(min_value=0, max_value=len(DEVICES) - 1),
    num_qubits=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    with_three_qubit=st.booleans(),
)
def test_every_registered_layout_pass_emits_a_routable_layout(
    device_index, num_qubits, seed, with_three_qubit
):
    target = DEVICES[device_index]
    device = target.coupling_map
    num_qubits = min(num_qubits, device.num_qubits)
    circuit = random_circuit(num_qubits, seed, with_three_qubit)
    for name in available_passes("layout"):
        properties = PropertySet()
        layout_pass = make_pass("layout", name, target, seed=seed % 97)
        layout_pass.run(circuit, properties)
        layout = properties["layout"]
        assert_complete_injective(layout, num_qubits, device.num_qubits)
        router = make_pass("routing", "sabre", target, seed=seed % 89)
        routed = router.run(circuit, properties)
        assert_routed_respects_coupling(routed, device)
        # The routed circuit preserves every original gate (same name
        # multiset among non-induced instructions) and only ever *adds*
        # induced SWAPs.
        assert sorted(inst.name for inst in routed if not inst.induced) == sorted(
            inst.name for inst in circuit
        )
        assert all(inst.name == "swap" for inst in routed if inst.induced)


@settings(max_examples=15, deadline=None)
@given(
    num_qubits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_vectorized_and_reference_layouts_agree_on_random_circuits(num_qubits, seed):
    """Engine parity as a property, not only at hand-picked seeds."""
    from repro.transpiler import DenseLayout, InteractionGraphLayout

    circuit = random_circuit(num_qubits, seed, with_three_qubit=False)
    for device in (square_lattice(3, 3), corral_topology(5, (1, 1))):
        for pass_cls, options in (
            (DenseLayout, {}),
            (InteractionGraphLayout, {"seed": seed % 101}),
        ):
            vector_props, reference_props = PropertySet(), PropertySet()
            pass_cls(device, engine="vector", **options).run(circuit, vector_props)
            pass_cls(device, engine="reference", **options).run(circuit, reference_props)
            assert vector_props["layout"] == reference_props["layout"]
