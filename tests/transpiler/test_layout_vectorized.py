"""Equivalence of the vectorized layout scorers and the legacy reference.

Mirror of ``test_routing_vectorized.py`` for the layout stage: the
vectorized engines of :class:`DenseLayout` and
:class:`InteractionGraphLayout` (and the vectorized
``CouplingMap.densest_subset`` they build on) must select *bit-identical*
layouts to the pre-vectorization Python-loop scorers, pinned at fixed
seeds across the paper's topology families — including the downstream
routing result, which consumes the layout.
"""

import pytest

from repro.circuits.dag import SHARED_DAG_PROPERTY, DAGCircuit
from repro.topology import CouplingMap, corral_topology, square_lattice
from repro.transpiler import (
    DenseLayout,
    InteractionGraphLayout,
    PropertySet,
    SabreRouting,
)
from repro.transpiler.passes.vf2_layout import VF2Layout
from repro.workloads import ghz_circuit, qaoa_vanilla_circuit, quantum_volume_circuit

TOPOLOGIES = {
    "corral": corral_topology(8, (1, 1)),
    "lattice": square_lattice(4, 4),
    "line": CouplingMap.line(12),
    "ring": CouplingMap.ring(14),
}


def _layout(pass_cls, coupling_map, circuit, engine, **options):
    properties = PropertySet()
    pass_cls(coupling_map, engine=engine, **options).run(circuit, properties)
    return properties["layout"], properties


class TestDenseLayoutEngineParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_identical_layout_qv(self, topology, seed):
        coupling_map = TOPOLOGIES[topology]
        circuit = quantum_volume_circuit(min(10, coupling_map.num_qubits), seed=seed)
        vector, _ = _layout(DenseLayout, coupling_map, circuit, "vector")
        reference, _ = _layout(DenseLayout, coupling_map, circuit, "reference")
        assert vector == reference

    @pytest.mark.parametrize("seed", [1, 7])
    def test_identical_layout_qaoa(self, seed):
        coupling_map = TOPOLOGIES["lattice"]
        circuit = qaoa_vanilla_circuit(12, seed=seed)
        vector, _ = _layout(DenseLayout, coupling_map, circuit, "vector")
        reference, _ = _layout(DenseLayout, coupling_map, circuit, "reference")
        assert vector == reference

    def test_identical_layout_without_two_qubit_gates(self):
        from repro.circuits import QuantumCircuit
        from repro.gates import HGate

        circuit = QuantumCircuit(5)
        for qubit in range(5):
            circuit.append(HGate(), (qubit,))
        coupling_map = TOPOLOGIES["corral"]
        vector, _ = _layout(DenseLayout, coupling_map, circuit, "vector")
        reference, _ = _layout(DenseLayout, coupling_map, circuit, "reference")
        assert vector == reference

    @pytest.mark.parametrize("topology", ["corral", "lattice"])
    def test_downstream_routing_identical(self, topology):
        """The engines must agree all the way through the routed circuit."""
        coupling_map = TOPOLOGIES[topology]
        circuit = quantum_volume_circuit(10, seed=5)
        outputs = {}
        for engine in ("vector", "reference"):
            _, properties = _layout(DenseLayout, coupling_map, circuit, engine)
            routed = SabreRouting(coupling_map, seed=5).run(circuit, properties)
            outputs[engine] = (
                [(inst.name, inst.qubits, inst.induced) for inst in routed],
                properties["routing_swaps"],
            )
        assert outputs["vector"] == outputs["reference"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            DenseLayout(TOPOLOGIES["line"], engine="turbo")


class TestInteractionLayoutEngineParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_identical_layout_qv(self, topology, seed):
        coupling_map = TOPOLOGIES[topology]
        circuit = quantum_volume_circuit(min(10, coupling_map.num_qubits), seed=seed)
        vector, _ = _layout(
            InteractionGraphLayout, coupling_map, circuit, "vector", seed=seed
        )
        reference, _ = _layout(
            InteractionGraphLayout, coupling_map, circuit, "reference", seed=seed
        )
        assert vector == reference

    @pytest.mark.parametrize("seed", [1, 7])
    def test_identical_layout_sparse_interactions(self, seed):
        """GHZ interacts only along a chain: exercises the centre branch."""
        coupling_map = TOPOLOGIES["lattice"]
        circuit = ghz_circuit(9)
        vector, _ = _layout(
            InteractionGraphLayout, coupling_map, circuit, "vector", seed=seed
        )
        reference, _ = _layout(
            InteractionGraphLayout, coupling_map, circuit, "reference", seed=seed
        )
        assert vector == reference

    def test_idle_qubits_placed_identically(self):
        """Qubits with no interactions at all take the centre branch."""
        from repro.circuits import QuantumCircuit
        from repro.gates import CXGate

        circuit = QuantumCircuit(6)
        circuit.append(CXGate(), (0, 1))  # qubits 2..5 stay idle
        coupling_map = TOPOLOGIES["lattice"]
        vector, _ = _layout(InteractionGraphLayout, coupling_map, circuit, "vector")
        reference, _ = _layout(
            InteractionGraphLayout, coupling_map, circuit, "reference"
        )
        assert vector == reference

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            InteractionGraphLayout(TOPOLOGIES["line"], engine="fast")


class TestNoiseAwareLayoutEngineParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_identical_layout_random_noise(self, topology, seed):
        from repro.core.noise import NoiseModel
        from repro.transpiler import NoiseAwareLayout

        coupling_map = TOPOLOGIES[topology]
        noise = NoiseModel.random(coupling_map, seed=seed)
        circuit = quantum_volume_circuit(min(10, coupling_map.num_qubits), seed=seed)
        vector, _ = _layout(
            NoiseAwareLayout, coupling_map, circuit, "vector", noise_model=noise
        )
        reference, _ = _layout(
            NoiseAwareLayout, coupling_map, circuit, "reference", noise_model=noise
        )
        assert vector == reference

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_identical_layout_uniform_noise(self, topology):
        """Uniform fidelity makes every score tie: tie-breaks must agree."""
        from repro.core.noise import NoiseModel
        from repro.transpiler import NoiseAwareLayout

        coupling_map = TOPOLOGIES[topology]
        noise = NoiseModel.uniform()
        circuit = quantum_volume_circuit(min(9, coupling_map.num_qubits), seed=2)
        vector, _ = _layout(
            NoiseAwareLayout, coupling_map, circuit, "vector", noise_model=noise
        )
        reference, _ = _layout(
            NoiseAwareLayout, coupling_map, circuit, "reference", noise_model=noise
        )
        assert vector == reference

    @pytest.mark.parametrize("size", [1, 4, 9, 14])
    def test_best_subset_engines_agree(self, size):
        from repro.core.noise import NoiseModel
        from repro.transpiler import NoiseAwareLayout

        coupling_map = TOPOLOGIES["ring"]
        noise = NoiseModel.random(coupling_map, seed=7)
        weights = noise.fidelity_matrix(coupling_map)
        assert NoiseAwareLayout._best_subset_vector(size, coupling_map, weights) == (
            NoiseAwareLayout._best_subset(size, coupling_map, noise)
        )

    def test_downstream_routing_identical(self):
        """The engines must agree all the way through the routed circuit."""
        from repro.core.noise import NoiseModel
        from repro.transpiler import NoiseAwareLayout, NoiseAwareRouting

        coupling_map = TOPOLOGIES["lattice"]
        noise = NoiseModel.random(coupling_map, seed=9)
        circuit = quantum_volume_circuit(10, seed=9)
        outputs = {}
        for engine in ("vector", "reference"):
            _, properties = _layout(
                NoiseAwareLayout, coupling_map, circuit, engine, noise_model=noise
            )
            routed = NoiseAwareRouting(coupling_map, seed=9).run(circuit, properties)
            outputs[engine] = (
                [(inst.name, inst.qubits, inst.induced) for inst in routed],
                properties["routing_swaps"],
            )
        assert outputs["vector"] == outputs["reference"]

    def test_unknown_engine_rejected(self):
        from repro.transpiler import NoiseAwareLayout

        with pytest.raises(ValueError, match="engine"):
            NoiseAwareLayout(TOPOLOGIES["line"], engine="turbo")


class TestDensestSubsetEngines:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_engines_agree_for_every_size(self, topology):
        coupling_map = TOPOLOGIES[topology]
        for size in range(1, coupling_map.num_qubits + 1):
            assert coupling_map.densest_subset(size, engine="vector") == (
                coupling_map.densest_subset(size, engine="reference")
            )

    def test_memoized_subset_is_copied(self):
        coupling_map = CouplingMap.line(8)
        first = coupling_map.densest_subset(4)
        first.append(99)  # mutating the returned list must not poison the cache
        assert 99 not in coupling_map.densest_subset(4)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            TOPOLOGIES["line"].densest_subset(3, engine="warp")

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap.line(4).densest_subset(5)

    def test_disconnected_graph_backfills(self):
        """Two components: the greedy growth falls back to unplaced qubits."""
        coupling_map = CouplingMap([(0, 1), (2, 3)], num_qubits=4)
        for size in (2, 3):
            assert coupling_map.densest_subset(size, engine="vector") == (
                coupling_map.densest_subset(size, engine="reference")
            )


class TestSharedDagReuse:
    def _count_dag_builds(self, monkeypatch):
        builds = []
        original = DAGCircuit.__init__

        def counting_init(self, circuit):
            builds.append(circuit)
            original(self, circuit)

        monkeypatch.setattr(DAGCircuit, "__init__", counting_init)
        return builds

    def test_vectorized_dense_layout_and_routing_share_one_dag(self, monkeypatch):
        builds = self._count_dag_builds(monkeypatch)
        coupling_map = TOPOLOGIES["corral"]
        circuit = quantum_volume_circuit(10, seed=6)
        properties = PropertySet()
        DenseLayout(coupling_map).run(circuit, properties)
        SabreRouting(coupling_map, seed=6).run(circuit, properties)
        assert len(builds) == 1

    def test_vf2_layout_and_routing_share_one_dag(self, monkeypatch):
        builds = self._count_dag_builds(monkeypatch)
        coupling_map = TOPOLOGIES["corral"]
        circuit = quantum_volume_circuit(6, seed=2)
        properties = PropertySet()
        VF2Layout(coupling_map).run(circuit, properties)
        SabreRouting(coupling_map, seed=2).run(circuit, properties)
        assert len(builds) == 1
        assert SHARED_DAG_PROPERTY in properties

    def test_dag_interaction_arrays_match_counter(self):
        circuit = quantum_volume_circuit(8, seed=4)
        dag = DAGCircuit(circuit)
        counter = dag.two_qubit_interactions()
        activity = dag.qubit_activity()
        matrix = dag.interaction_matrix()
        for qubit in range(8):
            expected = sum(
                count for pair, count in counter.items() if qubit in pair
            )
            assert activity[qubit] == expected
        for (a, b), count in counter.items():
            assert matrix[a, b] == count
            assert matrix[b, a] == count
        assert matrix.sum() == 2 * sum(counter.values())
