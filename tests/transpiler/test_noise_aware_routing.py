"""Tests for the noise-aware router."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core.noise import NoiseModel
from repro.topology import CouplingMap, get_topology
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes.layout_passes import TrivialLayout
from repro.transpiler.passes.noise_aware_routing import NoiseAwareRouting
from repro.workloads import build_workload


def route(circuit, device, noise_model, seed=0):
    properties = PropertySet()
    TrivialLayout(device).run(circuit, properties)
    routed = NoiseAwareRouting(device, noise_model=noise_model, seed=seed).run(
        circuit, properties
    )
    return routed, properties


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NoiseAwareRouting(noise_weight=-1.0)
        with pytest.raises(ValueError):
            NoiseAwareRouting(fidelity_floor=1.5)

    def test_edge_cost_is_one_for_perfect_edges(self):
        router = NoiseAwareRouting()
        perfect = NoiseModel.uniform(fidelity=1.0 - 1e-12)
        assert router.edge_cost(perfect, 0, 1) == pytest.approx(1.0, abs=1e-6)

    def test_edge_cost_grows_as_fidelity_drops(self):
        router = NoiseAwareRouting(noise_weight=2.0, fidelity_floor=0.9)
        noisy = NoiseModel(edge_fidelity={(0, 1): 0.92}, default_fidelity=0.999)
        assert router.edge_cost(noisy, 0, 1) > router.edge_cost(noisy, 2, 3)


class TestRoutingBehaviour:
    def test_produces_executable_circuits(self):
        device = get_topology("Square-Lattice", scale="small")
        circuit = build_workload("QFT", 8)
        routed, properties = route(circuit, device, NoiseModel.uniform())
        for instruction in routed:
            if instruction.is_two_qubit:
                assert device.has_edge(*instruction.qubits)
        assert properties["routing_swaps"] == routed.swap_count(induced_only=True)

    def test_uniform_noise_swap_counts_are_reasonable(self):
        device = get_topology("Heavy-Hex", scale="small")
        circuit = build_workload("QuantumVolume", 10, seed=4)
        routed, properties = route(circuit, device, NoiseModel.uniform())
        assert 0 < properties["routing_swaps"] < 10 * circuit.two_qubit_gate_count()

    def test_adjacent_circuit_needs_no_swaps(self):
        device = CouplingMap.line(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        routed, properties = route(circuit, device, NoiseModel.uniform())
        assert properties["routing_swaps"] == 0

    def test_avoids_a_catastrophically_bad_edge(self):
        """A ring gives two equal-length routes; the router must pick the clean one."""
        device = CouplingMap.ring(4)
        # Route 0 -> 2 goes either via qubit 1 or via qubit 3; poison edge (0, 1).
        noise = NoiseModel(
            edge_fidelity={(0, 1): 0.90, (1, 2): 0.99, (2, 3): 0.99, (0, 3): 0.99},
            default_fidelity=0.99,
        )
        circuit = QuantumCircuit(4)
        circuit.cx(0, 2)
        routed, _ = route(circuit, device, noise)
        used_edges = {
            tuple(sorted(inst.qubits)) for inst in routed if inst.name == "swap"
        }
        assert (0, 1) not in used_edges

    def test_noise_aware_beats_noise_blind_success_probability(self):
        """On a device with one bad region, noise-aware routing gives better EPS."""
        device = get_topology("Square-Lattice", scale="small")
        noise = NoiseModel.random(device, mean_fidelity=0.99, spread=0.02, seed=3)
        circuit = build_workload("QuantumVolume", 8, seed=6)
        aware, _ = route(circuit, device, noise, seed=1)
        blind, _ = route(circuit, device, NoiseModel.uniform(), seed=1)
        aware_success = noise.circuit_success_probability(aware)
        blind_success = noise.circuit_success_probability(blind)
        # Allow a small tolerance: the aware router must not be meaningfully worse.
        assert aware_success >= blind_success * 0.98

    def test_seed_reproducibility(self):
        device = get_topology("Hex-Lattice", scale="small")
        circuit = build_workload("QAOAVanilla", 8, seed=2)
        noise = NoiseModel.random(device, seed=5)
        first, _ = route(circuit, device, noise, seed=9)
        second, _ = route(circuit, device, noise, seed=9)
        assert [i.qubits for i in first] == [i.qubits for i in second]

    def test_noise_model_from_properties_is_used(self):
        device = CouplingMap.ring(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 2)
        properties = PropertySet()
        TrivialLayout(device).run(circuit, properties)
        properties["noise_model"] = NoiseModel(
            edge_fidelity={(0, 1): 0.90}, default_fidelity=0.999
        )
        routed = NoiseAwareRouting(device).run(circuit, properties)
        used_edges = {
            tuple(sorted(inst.qubits)) for inst in routed if inst.name == "swap"
        }
        assert (0, 1) not in used_edges


class TestNoiseAwareLayout:
    def test_rejects_oversized_circuit(self):
        from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout

        device = CouplingMap.line(3)
        with pytest.raises(ValueError):
            NoiseAwareLayout(device).run(build_workload("GHZ", 5), PropertySet())

    def test_produces_full_layout(self):
        from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout

        device = get_topology("Square-Lattice", scale="small")
        circuit = build_workload("GHZ", 6)
        properties = PropertySet()
        NoiseAwareLayout(device).run(circuit, properties)
        layout = properties["layout"]
        assert len(layout) == 6
        assert len(set(layout.to_dict().values())) == 6

    def test_avoids_the_low_fidelity_region(self):
        from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout

        device = CouplingMap.line(8)
        # Edges on the left half are poor; the right half is clean.
        noise = NoiseModel(
            edge_fidelity={(i, i + 1): (0.90 if i < 3 else 0.999) for i in range(7)},
            default_fidelity=0.999,
        )
        circuit = build_workload("GHZ", 4)
        properties = PropertySet()
        NoiseAwareLayout(device, noise_model=noise).run(circuit, properties)
        occupied = set(properties["layout"].to_dict().values())
        # The four seats should sit inside the clean right half {3..7}.
        assert occupied <= set(range(3, 8))

    def test_whole_device_circuits_use_every_qubit(self):
        from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout

        device = CouplingMap.ring(6)
        circuit = build_workload("GHZ", 6)
        properties = PropertySet()
        NoiseAwareLayout(device).run(circuit, properties)
        assert sorted(properties["layout"].to_dict().values()) == list(range(6))

    def test_layout_feeds_noise_model_to_downstream_passes(self):
        from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout

        device = get_topology("Heavy-Hex", scale="small")
        noise = NoiseModel.random(device, seed=2)
        properties = PropertySet()
        NoiseAwareLayout(device, noise_model=noise).run(build_workload("GHZ", 5), properties)
        assert properties["noise_model"] is noise

    def test_end_to_end_with_noise_aware_routing(self):
        from repro.transpiler.passes.noise_aware_routing import (
            NoiseAwareLayout,
            NoiseAwareRouting,
        )

        device = get_topology("Square-Lattice", scale="small")
        noise = NoiseModel.random(device, mean_fidelity=0.99, spread=0.01, seed=7)
        circuit = build_workload("QuantumVolume", 8, seed=1)
        properties = PropertySet()
        NoiseAwareLayout(device, noise_model=noise).run(circuit, properties)
        routed = NoiseAwareRouting(device).run(circuit, properties)
        for instruction in routed:
            if instruction.is_two_qubit:
                assert device.has_edge(*instruction.qubits)
