"""Optimization-level semantics: monotonicity and unitary equivalence.

Two properties anchor the level ladder (satellite of the staged-API
redesign):

* metric monotonicity — on a QFT + QAOA pair, level 2 never increases the
  2Q count relative to level 1, and the ladder never beats the cheaper
  level 0 router with *more* gates; and
* semantics — at every level, the compiled circuit implements the original
  unitary up to the virtual->physical permutations tracked by the layouts
  (checked exactly via :mod:`repro.simulator.unitary` in synthesis mode).
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core.noise import NoiseModel
from repro.linalg.matrices import matrices_equal
from repro.simulator.unitary import circuit_unitary
from repro.topology import square_lattice
from repro.transpiler import Target, make_target, transpile
from repro.workloads import build_workload

LEVELS = (0, 1, 2, 3)


def _permutation_matrix(layout, num_qubits: int) -> np.ndarray:
    """Basis permutation sending virtual qubit v's bit to layout[v]'s bit."""
    dim = 2 ** num_qubits
    matrix = np.zeros((dim, dim))
    for source in range(dim):
        destination = 0
        for virtual in range(num_qubits):
            if (source >> virtual) & 1:
                destination |= 1 << layout.physical(virtual)
        matrix[destination, source] = 1.0
    return matrix


class TestMetricMonotonicity:
    @pytest.mark.parametrize("workload", ["QFT", "QAOAVanilla"])
    @pytest.mark.parametrize(
        "topology,basis",
        [("Heavy-Hex", "cx"), ("Corral1,1", "siswap")],
    )
    def test_level2_never_increases_2q_vs_level1(self, workload, topology, basis):
        circuit = build_workload(workload, 10, seed=2)
        target = Target.from_names(topology, basis)
        metrics = {
            level: transpile(circuit, target, seed=2, optimization_level=level).metrics
            for level in (0, 1, 2)
        }
        assert metrics[2].total_2q <= metrics[1].total_2q <= metrics[0].total_2q
        assert metrics[2].critical_2q <= metrics[1].critical_2q
        assert metrics[2].total_swaps <= metrics[1].total_swaps
        assert metrics[2].weighted_duration <= metrics[1].weighted_duration

    def test_level_recorded_in_metrics(self):
        target = Target.from_names("Tree", "siswap")
        circuit = build_workload("GHZ", 6, seed=0)
        for level in LEVELS:
            metrics = transpile(circuit, target, optimization_level=level).metrics
            assert metrics.optimization_level == level
            assert metrics.as_dict()["optimization_level"] == level

    def test_unknown_level_rejected(self):
        target = Target.from_names("Tree", "siswap")
        with pytest.raises(ValueError, match="optimization level"):
            transpile(build_workload("GHZ", 4), target, optimization_level=7)

    def test_available_levels_lists_presets(self):
        from repro.transpiler import available_levels

        assert available_levels() == [0, 1, 2, 3]

    def test_basis_alongside_target_rejected(self):
        """A Target carries its basis; a conflicting one must not be dropped."""
        from repro.decomposition import get_basis

        target = Target.from_names("Tree", "siswap")
        circuit = build_workload("GHZ", 4)
        with pytest.raises(ValueError, match="inside the Target"):
            transpile(circuit, target, basis=get_basis("cx"))
        with pytest.raises(ValueError, match="inside the Target"):
            transpile(circuit, target, basis_name="cx")

    @pytest.mark.slow
    def test_level2_at_most_level0_across_workload_registry(self):
        """Acceptance sweep: level 2 <= level 0 on the paper workload suite."""
        from repro.workloads import PAPER_WORKLOADS

        for topology, basis in (("Heavy-Hex", "cx"), ("Corral1,1", "siswap")):
            target = Target.from_names(topology, basis)
            for workload in PAPER_WORKLOADS:
                circuit = build_workload(workload, 8, seed=0)
                level0 = transpile(circuit, target, seed=0, optimization_level=0).metrics
                level2 = transpile(circuit, target, seed=0, optimization_level=2).metrics
                assert level2.total_2q <= level0.total_2q, (topology, workload)


class TestLevel2Cleanup:
    def test_redundant_gates_cancelled(self):
        """Back-to-back inverse pairs vanish at level 2 but survive level 1."""
        circuit = QuantumCircuit(4, name="redundant")
        circuit.cx(0, 1)
        circuit.h(2)
        circuit.cx(0, 1)
        circuit.swap(1, 2)
        circuit.swap(1, 2)
        target = make_target(square_lattice(2, 2), "cx")
        level1 = transpile(circuit, target, seed=0, optimization_level=1).metrics
        level2 = transpile(circuit, target, seed=0, optimization_level=2).metrics
        assert level1.total_2q > 0
        assert level2.total_2q == 0
        assert level2.extra["cancelled_gates"] >= 4

    def test_commuting_separation_cancelled(self):
        """An RZ on the control commutes; the CX pair still cancels."""
        circuit = QuantumCircuit(4, name="commuting")
        circuit.cx(0, 1)
        circuit.rz(0.7, 0)
        circuit.cx(0, 1)
        target = make_target(square_lattice(2, 2), "cx")
        level2 = transpile(circuit, target, seed=0, optimization_level=2).metrics
        assert level2.total_2q == 0
        assert level2.extra["commutative_cancelled"] >= 2


class TestUnitaryEquivalence:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("workload", ["QFT", "QAOAVanilla"])
    def test_synthesis_output_implements_the_algorithm(self, level, workload):
        """Permutation-adjusted unitary equality at every level."""
        circuit = build_workload(workload, 4, seed=3)
        target = make_target(square_lattice(2, 2), "siswap")
        result = transpile(
            circuit,
            target,
            translation_mode="synthesis",
            seed=5,
            optimization_level=level,
        )
        original = circuit_unitary(circuit)
        physical = circuit_unitary(result.circuit)
        p_initial = _permutation_matrix(result.initial_layout, 4)
        p_final = _permutation_matrix(result.final_layout, 4)
        assert matrices_equal(
            physical @ p_initial,
            p_final @ original,
            up_to_global_phase=True,
            atol=1e-4,
        )


class TestLevel3:
    def test_schedule_attached(self):
        target = Target.from_names("Corral1,1", "siswap")
        circuit = build_workload("QuantumVolume", 8, seed=1)
        result = transpile(circuit, target, seed=1, optimization_level=3)
        assert result.schedule is not None
        assert result.metrics.extra["duration_ns"] > 0
        assert result.metrics.extra["parallelism"] > 0
        # The schedule times the final circuit under the SNAIL preset.
        assert result.schedule.total_duration() == result.metrics.extra["duration_ns"]

    def test_noise_model_engages_noise_aware_routing(self):
        base = Target.from_names("Corral1,1", "siswap")
        noisy = base.with_noise(NoiseModel.random(base.coupling_map, seed=3))
        circuit = build_workload("QuantumVolume", 8, seed=1)
        uniform = transpile(circuit, base, seed=1, optimization_level=3)
        aware = transpile(circuit, noisy, seed=1, optimization_level=3)
        assert uniform.metrics.routing_method == "sabre"
        assert aware.metrics.routing_method == "noise_aware"
        for instruction in aware.circuit:
            if instruction.is_two_qubit:
                assert base.coupling_map.has_edge(*instruction.qubits)

    def test_scheduling_method_forces_schedule_at_any_level(self):
        target = Target.from_names("Tree", "siswap")
        circuit = build_workload("GHZ", 6, seed=0)
        result = transpile(circuit, target, scheduling_method="alap", optimization_level=1)
        assert result.schedule is not None
        assert result.schedule.discipline == "alap"
