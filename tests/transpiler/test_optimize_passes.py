"""Tests for the clean-up passes and the multi-qubit expansion pass."""


from repro.circuits import QuantumCircuit
from repro.simulator import circuits_equivalent
from repro.transpiler import DecomposeMultiQubit, Optimize1qGates, PropertySet, RemoveBarriers


class TestOptimize1qGates:
    def test_merges_adjacent_rotations(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.2, 0).rz(0.3, 0).rz(0.4, 0)
        optimized = Optimize1qGates().run(circuit, PropertySet())
        assert optimized.size() == 1
        assert circuits_equivalent(circuit, optimized)

    def test_drops_identity_runs(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).x(0)
        optimized = Optimize1qGates().run(circuit, PropertySet())
        assert optimized.size() == 0

    def test_preserves_semantics_across_2q_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rz(0.3, 0).cx(0, 1).h(1).h(1).rx(0.2, 0)
        optimized = Optimize1qGates().run(circuit, PropertySet())
        assert circuits_equivalent(circuit, optimized)
        assert optimized.two_qubit_gate_count() == 1

    def test_does_not_merge_across_two_qubit_gate(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.2, 0).cx(0, 1).rz(0.3, 0)
        optimized = Optimize1qGates().run(circuit, PropertySet())
        # One merged gate before and one after the CX.
        assert optimized.size() == 3


class TestRemoveBarriers:
    def test_barriers_removed(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cx(0, 1).barrier()
        stripped = RemoveBarriers().run(circuit, PropertySet())
        assert "barrier" not in stripped.count_ops()
        assert stripped.size() == 2


class TestDecomposeMultiQubit:
    def test_toffoli_expanded_to_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        expanded = DecomposeMultiQubit().run(circuit, PropertySet())
        assert all(inst.num_qubits <= 2 for inst in expanded)
        assert circuits_equivalent(circuit, expanded)

    def test_expansion_preserves_qubit_mapping(self):
        circuit = QuantumCircuit(5)
        circuit.ccx(4, 2, 0)
        expanded = DecomposeMultiQubit().run(circuit, PropertySet())
        touched = {q for inst in expanded for q in inst.qubits}
        assert touched == {0, 2, 4}
        assert circuits_equivalent(circuit, expanded)

    def test_two_qubit_only_circuit_returned_unchanged(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        expanded = DecomposeMultiQubit().run(circuit, PropertySet())
        assert expanded is circuit
