"""Tests for the name-based pass registry and the staged pass manager."""

import pytest

from repro.circuits import QuantumCircuit
from repro.topology import square_lattice
from repro.transpiler import (
    STAGES,
    PropertySet,
    StagedPassManager,
    TranspilerPass,
    available_passes,
    make_pass,
    make_target,
    register_pass,
    transpile,
)
from repro.transpiler.registry import _REGISTRY
from repro.workloads import ghz_circuit


class TestRegistryContents:
    def test_stage_names(self):
        assert STAGES == (
            "init",
            "layout",
            "routing",
            "translation",
            "optimization",
            "scheduling",
        )

    def test_builtin_passes_registered(self):
        assert set(available_passes("layout")) >= {
            "trivial",
            "dense",
            "interaction",
            "vf2",
            "noise_aware",
        }
        assert set(available_passes("routing")) >= {
            "sabre",
            "stochastic",
            "basic",
            "noise_aware",
        }
        assert set(available_passes("translation")) == {"count", "synthesis"}
        assert set(available_passes("optimization")) >= {
            "cancel_inverses",
            "commutative_cancellation",
            "merge_1q",
        }
        assert set(available_passes("scheduling")) == {"asap", "alap"}

    def test_available_passes_without_stage_maps_all(self):
        catalogue = available_passes()
        assert set(catalogue) == set(STAGES)
        assert "sabre" in catalogue["routing"]

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            available_passes("postprocessing")
        with pytest.raises(ValueError, match="unknown stage"):
            make_pass("postprocessing", "x", make_target(square_lattice(2, 2), "cx"))

    def test_unknown_pass_error_lists_registered_options(self):
        target = make_target(square_lattice(4, 4), "cx")
        with pytest.raises(ValueError) as excinfo:
            make_pass("routing", "teleport", target)
        message = str(excinfo.value)
        assert "teleport" in message
        for option in available_passes("routing"):
            assert option in message


class TestCustomRegistration:
    def test_registered_pass_usable_by_name(self):
        class TagCircuit(TranspilerPass):
            name = "tag_circuit"

            def run(self, circuit, properties):
                properties["tagged"] = True
                return circuit

        @register_pass("init", "tag")
        def _tag(target, seed=0):
            return TagCircuit()

        try:
            target = make_target(square_lattice(4, 4), "cx")
            built = make_pass("init", "tag", target)
            assert isinstance(built, TagCircuit)
            assert "tag" in available_passes("init")
        finally:
            del _REGISTRY["init"]["tag"]

    def test_register_pass_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            register_pass("finalize", "x")


class TestStagedPassManager:
    def test_runs_stages_in_canonical_order(self):
        order = []

        class Recorder(TranspilerPass):
            def __init__(self, label):
                self.name = f"rec_{label}"
                self._label = label

            def run(self, circuit, properties):
                order.append(self._label)
                return circuit

        manager = StagedPassManager(
            {"translation": [Recorder("t")], "layout": [Recorder("l")], "init": [Recorder("i")]}
        )
        manager.run(QuantumCircuit(2), PropertySet())
        assert order == ["i", "l", "t"]

    def test_stage_circuits_recorded(self):
        target = make_target(square_lattice(4, 4), "siswap")
        result = transpile(ghz_circuit(5), target, seed=1)
        stage_circuits = result.properties["stage_circuits"]
        assert set(stage_circuits) == {"init", "layout", "routing", "translation"}
        assert stage_circuits["translation"] is result.circuit

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            StagedPassManager({"cleanup": []})

    def test_append_to_stage(self):
        class Noop(TranspilerPass):
            name = "noop"

            def run(self, circuit, properties):
                return circuit

        manager = StagedPassManager()
        assert manager.passes == []
        manager.append_to_stage("routing", Noop())
        assert len(manager.passes) == 1
        with pytest.raises(ValueError, match="unknown stage"):
            manager.append_to_stage("cleanup", Noop())

    def test_plain_append_still_executes(self):
        """The inherited append() must feed execution, not just .passes."""
        ran = []

        class Marker(TranspilerPass):
            name = "marker"

            def run(self, circuit, properties):
                ran.append(True)
                return circuit

        manager = StagedPassManager()
        manager.append(Marker())
        manager.run(QuantumCircuit(2), PropertySet())
        assert ran == [True]

    def test_custom_router_without_private_properties(self):
        """A registered router that only sets the layout contract works."""

        class IdentityRouter(TranspilerPass):
            name = "identity_router"

            def run(self, circuit, properties):
                properties["final_layout"] = properties.require("layout").copy()
                return circuit  # GHZ on a line is already routable

        @register_pass("routing", "identity")
        def _identity(target, seed=0):
            return IdentityRouter()

        try:
            from repro.topology import CouplingMap

            target = make_target(CouplingMap.line(5), "cx")
            result = transpile(
                ghz_circuit(5), target, routing_method="identity", layout_method="trivial"
            )
            assert result.metrics.total_swaps == 0
            assert result.metrics.routing_method == "identity"
        finally:
            del _REGISTRY["routing"]["identity"]
