"""Tests for the routing passes."""

import pytest

from repro.circuits import QuantumCircuit
from repro.topology import CouplingMap, hypercube, square_lattice
from repro.transpiler import (
    DenseLayout,
    PropertySet,
    SabreRouting,
    StochasticRouting,
    TrivialLayout,
)
from repro.workloads import qaoa_vanilla_circuit, quantum_volume_circuit


def _route(circuit, coupling_map, router_cls, layout_cls=TrivialLayout, seed=0):
    properties = PropertySet()
    layout_cls(coupling_map).run(circuit, properties)
    router = router_cls(coupling_map, seed=seed)
    routed = router.run(circuit, properties)
    return routed, properties


def _assert_all_2q_on_edges(routed, coupling_map):
    for instruction in routed:
        if instruction.is_two_qubit:
            assert coupling_map.has_edge(*instruction.qubits), instruction


def _non_swap_two_qubit_count(circuit):
    return sum(
        1 for inst in circuit if inst.is_two_qubit and not (inst.name == "swap" and inst.induced)
    )


class TestSabreRouting:
    @pytest.mark.parametrize("router_cls", [SabreRouting, StochasticRouting])
    def test_adjacent_gates_need_no_swaps(self, router_cls):
        line = CouplingMap.line(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(1, 2).cx(2, 3)
        routed, properties = _route(circuit, line, router_cls)
        assert properties["routing_swaps"] == 0
        assert routed.two_qubit_gate_count() == 3

    @pytest.mark.parametrize("router_cls", [SabreRouting, StochasticRouting])
    def test_distant_gate_requires_swaps(self, router_cls):
        line = CouplingMap.line(5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        routed, properties = _route(circuit, line, router_cls)
        assert properties["routing_swaps"] >= 3
        _assert_all_2q_on_edges(routed, line)

    @pytest.mark.parametrize("router_cls", [SabreRouting, StochasticRouting])
    def test_all_gates_routed_onto_edges(self, router_cls):
        lattice = square_lattice(4, 4)
        circuit = quantum_volume_circuit(10, seed=4)
        routed, _ = _route(circuit, lattice, router_cls, layout_cls=DenseLayout)
        _assert_all_2q_on_edges(routed, lattice)

    @pytest.mark.parametrize("router_cls", [SabreRouting, StochasticRouting])
    def test_gate_count_preserved(self, router_cls):
        lattice = square_lattice(4, 4)
        circuit = quantum_volume_circuit(9, seed=5)
        routed, _ = _route(circuit, lattice, router_cls, layout_cls=DenseLayout)
        assert _non_swap_two_qubit_count(routed) == circuit.two_qubit_gate_count()

    def test_single_qubit_gates_pass_through(self):
        line = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2).cx(0, 2)
        routed, _ = _route(circuit, line, SabreRouting)
        assert routed.count_ops().get("h", 0) == 3

    def test_swaps_marked_induced(self):
        line = CouplingMap.line(5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        routed, _ = _route(circuit, line, SabreRouting)
        assert routed.swap_count(induced_only=True) == routed.swap_count()

    def test_output_on_physical_register(self):
        lattice = square_lattice(4, 4)
        circuit = quantum_volume_circuit(6, seed=6)
        routed, _ = _route(circuit, lattice, SabreRouting, layout_cls=DenseLayout)
        assert routed.num_qubits == 16

    def test_final_layout_tracks_swaps(self):
        line = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        routed, properties = _route(circuit, line, SabreRouting)
        initial = properties["layout"]
        final = properties["final_layout"]
        assert initial != final or properties["routing_swaps"] == 0

    def test_deterministic_for_fixed_seed(self):
        lattice = square_lattice(4, 4)
        circuit = quantum_volume_circuit(8, seed=7)
        first, _ = _route(circuit, lattice, SabreRouting, layout_cls=DenseLayout, seed=3)
        second, _ = _route(circuit, lattice, SabreRouting, layout_cls=DenseLayout, seed=3)
        assert [i.qubits for i in first] == [i.qubits for i in second]

    def test_richer_topology_needs_fewer_swaps(self):
        """Observation 2 of the paper: higher connectivity -> fewer SWAPs."""
        circuit = qaoa_vanilla_circuit(12, seed=1)
        lattice = square_lattice(4, 4)
        cube = hypercube(4)
        _, lattice_props = _route(circuit, lattice, SabreRouting, layout_cls=DenseLayout)
        _, cube_props = _route(circuit, cube, SabreRouting, layout_cls=DenseLayout)
        assert cube_props["routing_swaps"] <= lattice_props["routing_swaps"]


class TestStochasticRouting:
    def test_trials_pick_best(self):
        lattice = square_lattice(4, 4)
        circuit = quantum_volume_circuit(8, seed=9)
        properties = PropertySet()
        DenseLayout(lattice).run(circuit, properties)
        single = StochasticRouting(lattice, seed=0, trials=1)
        multi = StochasticRouting(lattice, seed=0, trials=5)
        single.run(circuit, PropertySet(properties))
        swaps_single = StochasticRouting(lattice, seed=0, trials=1).run(
            circuit, PropertySet(properties)
        ).swap_count(induced_only=True)
        swaps_multi = multi.run(circuit, PropertySet(properties)).swap_count(induced_only=True)
        assert swaps_multi <= swaps_single

    def test_routed_circuit_recorded_in_properties(self):
        line = CouplingMap.line(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        properties = PropertySet()
        TrivialLayout(line).run(circuit, properties)
        routed = StochasticRouting(line, seed=1).run(circuit, properties)
        assert properties["routed_circuit"] is routed
        assert properties["routing_swaps"] == routed.swap_count(induced_only=True)
