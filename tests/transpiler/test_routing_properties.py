"""Property-based tests of routing invariants.

Whatever circuit and topology the router is given, its output must
(1) keep every two-qubit gate on a coupled pair, (2) preserve the
multiset of non-SWAP gates, and (3) implement the same permutation-adjusted
computation.  These are the invariants every metric in the paper rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.gates import RZZGate
from repro.topology import CouplingMap, corral_topology, hypercube, square_lattice, tree_topology
from repro.transpiler import DenseLayout, PropertySet, SabreRouting, StochasticRouting

TOPOLOGIES = [
    CouplingMap.line(8, name="line"),
    CouplingMap.ring(9, name="ring"),
    square_lattice(3, 3),
    hypercube(3),
    tree_topology(levels=2, arity=3),
    corral_topology(6, (1, 1)),
]


def _random_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        kind = rng.integers(3)
        if kind == 0:
            circuit.rx(float(rng.uniform(0, np.pi)), int(rng.integers(num_qubits)))
        elif kind == 1:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circuit.append(RZZGate(float(rng.uniform(0, np.pi))), (int(a), int(b)))
    return circuit


def _route(circuit, coupling_map, router_cls, seed):
    properties = PropertySet()
    DenseLayout(coupling_map).run(circuit, properties)
    routed = router_cls(coupling_map, seed=seed).run(circuit, properties)
    return routed, properties


@pytest.mark.parametrize("router_cls", [SabreRouting, StochasticRouting])
class TestRoutingInvariants:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        topology_index=st.integers(0, len(TOPOLOGIES) - 1),
        num_gates=st.integers(1, 40),
    )
    def test_invariants_hold(self, router_cls, seed, topology_index, num_gates):
        coupling_map = TOPOLOGIES[topology_index]
        num_virtual = min(6, coupling_map.num_qubits)
        circuit = _random_circuit(num_virtual, num_gates, seed)
        routed, properties = _route(circuit, coupling_map, router_cls, seed)

        # (1) every 2Q gate acts on coupled physical qubits
        for instruction in routed:
            if instruction.is_two_qubit:
                assert coupling_map.has_edge(*instruction.qubits)

        # (2) the non-SWAP gate multiset is preserved
        original_names = sorted(
            inst.name for inst in circuit if inst.name != "barrier"
        )
        routed_names = sorted(
            inst.name
            for inst in routed
            if inst.name != "barrier" and not (inst.name == "swap" and inst.induced)
        )
        assert routed_names == original_names

        # (3) the reported SWAP count matches the circuit content
        assert properties["routing_swaps"] == routed.swap_count(induced_only=True)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_routed_semantics_on_line(self, router_cls, seed):
        """Routed circuit equals the original up to the tracked permutation."""
        from repro.simulator import StatevectorSimulator, statevector

        coupling_map = CouplingMap.line(5)
        circuit = _random_circuit(4, 10, seed)
        routed, properties = _route(circuit, coupling_map, router_cls, seed)
        final_layout = properties["final_layout"]
        reference = statevector(circuit)
        physical_state = StatevectorSimulator(max_qubits=5).run(routed)
        # Undo the virtual -> physical permutation encoded by the layout.
        recovered = np.zeros_like(reference)
        for index, amplitude in enumerate(physical_state):
            if abs(amplitude) < 1e-12:
                continue
            virtual_index = 0
            keep = True
            for physical in range(coupling_map.num_qubits):
                bit = (index >> physical) & 1
                virtual = final_layout.virtual(physical)
                if virtual is None or virtual >= circuit.num_qubits:
                    if bit:
                        keep = False
                        break
                    continue
                virtual_index |= bit << virtual
            if keep:
                recovered[virtual_index] += amplitude
        fidelity = abs(np.vdot(recovered, reference))
        assert fidelity == pytest.approx(1.0, abs=1e-6)
