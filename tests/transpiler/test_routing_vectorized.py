"""Equivalence of the vectorized SWAP scorer and the legacy reference.

The vectorized engine must be *bit-identical* to the pre-vectorization
Python-loop scorer: same scores, same tie sets, same RNG draws, hence the
same SWAP sequence gate for gate.  These tests pin that contract at fixed
seeds across the paper's topology families.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.dag import SHARED_DAG_PROPERTY, DAGCircuit
from repro.core.noise import NoiseModel
from repro.topology import CouplingMap, corral_topology, square_lattice
from repro.transpiler import DenseLayout, PropertySet, SabreRouting, StochasticRouting
from repro.transpiler.passes.noise_aware_routing import NoiseAwareRouting
from repro.workloads import qaoa_vanilla_circuit, quantum_volume_circuit

TOPOLOGIES = {
    "corral": corral_topology(8, (1, 1)),
    "lattice": square_lattice(4, 4),
    "line": CouplingMap.line(12),
}


def _route(circuit, coupling_map, **router_options):
    properties = PropertySet()
    DenseLayout(coupling_map).run(circuit, properties)
    routed = SabreRouting(coupling_map, **router_options).run(circuit, properties)
    return routed, properties


def _signature(circuit):
    return [(inst.name, inst.qubits, inst.induced) for inst in circuit]


class TestSabreEngineParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_identical_swap_sequence_qv(self, topology, seed):
        coupling_map = TOPOLOGIES[topology]
        circuit = quantum_volume_circuit(min(10, coupling_map.num_qubits), seed=seed)
        vector, vector_props = _route(circuit, coupling_map, seed=seed)
        reference, reference_props = _route(
            circuit, coupling_map, seed=seed, engine="reference"
        )
        assert _signature(vector) == _signature(reference)
        assert vector_props["routing_swaps"] == reference_props["routing_swaps"]
        assert vector_props["final_layout"] == reference_props["final_layout"]

    @pytest.mark.parametrize("seed", [1, 7])
    def test_identical_swap_sequence_qaoa(self, seed):
        coupling_map = TOPOLOGIES["lattice"]
        circuit = qaoa_vanilla_circuit(12, seed=seed)
        vector, _ = _route(circuit, coupling_map, seed=seed)
        reference, _ = _route(circuit, coupling_map, seed=seed, engine="reference")
        assert _signature(vector) == _signature(reference)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SabreRouting(TOPOLOGIES["line"], engine="turbo")

    def test_deterministic_across_calls(self):
        coupling_map = TOPOLOGIES["corral"]
        circuit = quantum_volume_circuit(10, seed=5)
        first, _ = _route(circuit, coupling_map, seed=9)
        second, _ = _route(circuit, coupling_map, seed=9)
        assert _signature(first) == _signature(second)

    def test_three_qubit_gates_are_routed_not_passed_through(self):
        """Direct router use (no decompose stage): a ccx on distant qubits
        must still come out with its first two operands on a coupling."""
        from repro.gates import CCXGate

        coupling_map = TOPOLOGIES["line"]
        circuit = QuantumCircuit(12)
        circuit.append(CCXGate(), (0, 11, 5))
        routed, properties = _route(circuit, coupling_map, seed=0)
        assert properties["routing_swaps"] > 0
        (ccx,) = [inst for inst in routed if inst.name == "ccx"]
        assert coupling_map.has_edge(ccx.qubits[0], ccx.qubits[1])


class TestNoiseAwareEngineParity:
    def _noise_model(self, coupling_map, spread=0.099):
        edges = coupling_map.edges()
        fidelity = {
            edge: 0.90 + spread * ((7 * index) % 10) / 10
            for index, edge in enumerate(edges)
        }
        return NoiseModel(edge_fidelity=fidelity, default_fidelity=0.99)

    @pytest.mark.parametrize("topology", ["corral", "lattice"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_identical_swap_sequence(self, topology, seed):
        coupling_map = TOPOLOGIES[topology]
        noise_model = self._noise_model(coupling_map)
        circuit = quantum_volume_circuit(10, seed=seed)
        outputs = {}
        for engine in ("vector", "reference"):
            properties = PropertySet()
            DenseLayout(coupling_map).run(circuit, properties)
            routed = NoiseAwareRouting(
                coupling_map, noise_model=noise_model, seed=seed, engine=engine
            ).run(circuit, properties)
            outputs[engine] = (_signature(routed), properties["routing_swaps"])
        assert outputs["vector"] == outputs["reference"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            NoiseAwareRouting(TOPOLOGIES["corral"], engine="fast")


class TestSharedDag:
    def test_router_records_shared_dag(self):
        coupling_map = TOPOLOGIES["lattice"]
        circuit = quantum_volume_circuit(8, seed=2)
        _, properties = _route(circuit, coupling_map, seed=2)
        recorded_circuit, dag = properties[SHARED_DAG_PROPERTY]
        assert recorded_circuit is circuit
        assert isinstance(dag, DAGCircuit)

    def test_shared_dag_reused_for_same_circuit(self):
        circuit = quantum_volume_circuit(6, seed=1)
        properties = PropertySet()
        first = DAGCircuit.shared(circuit, properties)
        second = DAGCircuit.shared(circuit, properties)
        assert first is second

    def test_shared_dag_rebuilt_for_new_circuit(self):
        properties = PropertySet()
        first = DAGCircuit.shared(quantum_volume_circuit(6, seed=1), properties)
        second = DAGCircuit.shared(quantum_volume_circuit(6, seed=2), properties)
        assert first is not second

    def _count_dag_builds(self, monkeypatch):
        builds = []
        original = DAGCircuit.__init__

        def counting_init(self, circuit):
            builds.append(circuit)
            original(self, circuit)

        monkeypatch.setattr(DAGCircuit, "__init__", counting_init)
        return builds

    def test_stochastic_trials_share_one_dag(self, monkeypatch):
        """All stochastic trials must reuse the DAG built on entry."""
        builds = self._count_dag_builds(monkeypatch)
        coupling_map = TOPOLOGIES["lattice"]
        circuit = quantum_volume_circuit(8, seed=4)
        properties = PropertySet()
        DenseLayout(coupling_map).run(circuit, properties)
        StochasticRouting(coupling_map, seed=0, trials=5).run(circuit, properties)
        assert len(builds) == 1

    def test_layout_and_routing_share_one_dag(self, monkeypatch):
        """The DAG built by the layout pass is the one routing consumes."""
        builds = self._count_dag_builds(monkeypatch)
        coupling_map = TOPOLOGIES["corral"]
        circuit = quantum_volume_circuit(10, seed=6)
        properties = PropertySet()
        DenseLayout(coupling_map).run(circuit, properties)
        SabreRouting(coupling_map, seed=6).run(circuit, properties)
        assert len(builds) == 1

    def test_sabre_results_unchanged_with_prebuilt_dag(self):
        """A DAG left in the property set by an earlier pass is picked up."""
        coupling_map = TOPOLOGIES["corral"]
        circuit = quantum_volume_circuit(10, seed=3)
        cold, cold_props = _route(circuit, coupling_map, seed=3)

        properties = PropertySet()
        DenseLayout(coupling_map).run(circuit, properties)
        DAGCircuit.shared(circuit, properties)  # prebuild
        warm = SabreRouting(coupling_map, seed=3).run(circuit, properties)
        assert _signature(warm) == _signature(cold)
        assert properties["routing_swaps"] == cold_props["routing_swaps"]
