"""Tests for gate-duration models and ASAP/ALAP scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import CXGate, HGate, NthRootISwapGate, SqrtISwapGate, SwapGate
from repro.transpiler.scheduling import (
    GateDurations,
    critical_path_duration,
    schedule_alap,
    schedule_asap,
)
from repro.workloads import build_workload


def layered_circuit() -> QuantumCircuit:
    """Two parallel CX layers plus a dependent third gate."""
    circuit = QuantumCircuit(4, name="layered")
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.cx(1, 2)
    return circuit


class TestGateDurations:
    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            GateDurations(one_qubit=-1.0)
        with pytest.raises(ValueError):
            GateDurations(two_qubit_default=0.0)
        with pytest.raises(ValueError):
            GateDurations(by_name={"cx": -5.0})

    def test_presets_exist_for_all_modulators(self):
        for modulator in ("snail", "CR", "FSIM"):
            durations = GateDurations.for_modulator(modulator)
            assert durations.two_qubit_default > 0.0

    def test_unknown_modulator_raises(self):
        with pytest.raises(ValueError):
            GateDurations.for_modulator("laser")

    def test_nth_root_iswap_scales_inversely_with_n(self):
        durations = GateDurations(iswap_full=400.0)
        full = durations.duration_of(Instruction(NthRootISwapGate(1), (0, 1)))
        half = durations.duration_of(Instruction(NthRootISwapGate(2), (0, 1)))
        quarter = durations.duration_of(Instruction(NthRootISwapGate(4), (0, 1)))
        assert full == pytest.approx(400.0)
        assert half == pytest.approx(200.0)
        assert quarter == pytest.approx(100.0)

    def test_by_name_override_wins(self):
        durations = GateDurations(by_name={"cx": 123.0})
        assert durations.duration_of(Instruction(CXGate(), (0, 1))) == pytest.approx(123.0)

    def test_one_qubit_duration(self):
        durations = GateDurations(one_qubit=17.0)
        assert durations.duration_of(Instruction(HGate(), (0,))) == pytest.approx(17.0)

    def test_barrier_is_free(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        (barrier,) = circuit.instructions
        assert GateDurations().duration_of(barrier) == 0.0

    def test_snail_preset_siswap_is_half_iswap(self):
        durations = GateDurations.snail()
        siswap = durations.duration_of(Instruction(SqrtISwapGate(), (0, 1)))
        iswap = durations.duration_of(Instruction(NthRootISwapGate(1), (0, 1)))
        assert siswap == pytest.approx(iswap / 2.0)


class TestAsapSchedule:
    def test_parallel_gates_start_together(self):
        schedule = schedule_asap(layered_circuit(), GateDurations(two_qubit_default=100.0))
        starts = [t.start for t in schedule.timed_instructions]
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(0.0)
        assert starts[2] == pytest.approx(100.0)

    def test_total_duration_equals_critical_path(self):
        durations = GateDurations(two_qubit_default=100.0)
        circuit = layered_circuit()
        schedule = schedule_asap(circuit, durations)
        assert schedule.total_duration() == pytest.approx(
            critical_path_duration(circuit, durations)
        )

    def test_empty_circuit_has_zero_duration(self):
        schedule = schedule_asap(QuantumCircuit(2), GateDurations())
        assert schedule.total_duration() == 0.0
        assert schedule.average_parallelism() == 0.0
        assert schedule.utilisation() == 0.0

    def test_busy_plus_idle_equals_makespan(self):
        circuit = build_workload("GHZ", 5)
        durations = GateDurations.snail()
        schedule = schedule_asap(circuit, durations)
        for qubit in range(circuit.num_qubits):
            total = schedule.qubit_busy_time(qubit) + schedule.qubit_idle_time(qubit)
            assert total == pytest.approx(schedule.total_duration())

    def test_swap_heavier_than_cx_under_cr_preset(self):
        durations = GateDurations.cross_resonance()
        swap = durations.duration_of(Instruction(SwapGate(), (0, 1)))
        cx = durations.duration_of(Instruction(CXGate(), (0, 1)))
        assert swap == pytest.approx(3 * cx)


class TestAlapSchedule:
    def test_same_makespan_as_asap(self):
        circuit = build_workload("QFT", 5)
        durations = GateDurations.snail()
        asap = schedule_asap(circuit, durations)
        alap = schedule_alap(circuit, durations)
        assert alap.total_duration() == pytest.approx(asap.total_duration())

    def test_alap_starts_never_earlier_than_asap(self):
        circuit = layered_circuit()
        durations = GateDurations(two_qubit_default=50.0)
        asap = {id(t.instruction): t.start for t in schedule_asap(circuit, durations).timed_instructions}
        for timed in schedule_alap(circuit, durations).timed_instructions:
            assert timed.start >= asap[id(timed.instruction)] - 1e-9

    def test_final_gate_is_pushed_to_the_end(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.h(2)
        durations = GateDurations(one_qubit=10.0, two_qubit_default=100.0)
        alap = schedule_alap(circuit, durations)
        h_timing = [t for t in alap.timed_instructions if t.instruction.name == "h"][0]
        assert h_timing.stop == pytest.approx(alap.total_duration())


class TestScheduleMetrics:
    def test_average_parallelism_of_parallel_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        schedule = schedule_asap(circuit, GateDurations(two_qubit_default=100.0))
        assert schedule.average_parallelism() == pytest.approx(2.0)

    def test_utilisation_bounds(self):
        circuit = build_workload("QuantumVolume", 6, seed=3)
        schedule = schedule_asap(circuit, GateDurations.snail())
        assert 0.0 < schedule.utilisation() <= 1.0

    def test_two_qubit_duration_counts_only_2q(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        durations = GateDurations(one_qubit=10.0, two_qubit_default=100.0)
        schedule = schedule_asap(circuit, durations)
        assert schedule.two_qubit_duration() == pytest.approx(100.0)

    def test_timeline_peaks_match_parallelism(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        schedule = schedule_asap(circuit, GateDurations(two_qubit_default=100.0))
        assert schedule.timeline(resolution=50).max() == pytest.approx(2.0)

    def test_repr_and_len(self):
        circuit = layered_circuit()
        schedule = schedule_asap(circuit, GateDurations())
        assert len(schedule) == 3


class TestScheduleProperties:
    @given(seed=st.integers(min_value=0, max_value=200), width=st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_no_qubit_overlap_in_asap_schedule(self, seed, width):
        circuit = build_workload("QuantumVolume", width, seed=seed)
        schedule = schedule_asap(circuit, GateDurations.snail())
        per_qubit = {q: [] for q in range(width)}
        for timed in schedule.timed_instructions:
            for qubit in timed.instruction.qubits:
                per_qubit[qubit].append((timed.start, timed.stop))
        for intervals in per_qubit.values():
            intervals.sort()
            for (start_a, stop_a), (start_b, _) in zip(intervals, intervals[1:]):
                assert start_b >= stop_a - 1e-9

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_alap_preserves_dependency_order(self, seed):
        circuit = build_workload("QuantumVolume", 5, seed=seed)
        schedule = schedule_alap(circuit, GateDurations.snail())
        last_stop = {q: -np.inf for q in range(circuit.num_qubits)}
        for timed in schedule.timed_instructions:
            for qubit in timed.instruction.qubits:
                assert timed.start >= last_stop[qubit] - 1e-9
            for qubit in timed.instruction.qubits:
                last_stop[qubit] = max(last_stop[qubit], timed.stop)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_makespan_at_least_any_single_qubit_busy_time(self, seed):
        circuit = build_workload("QAOAVanilla", 6, seed=seed)
        schedule = schedule_asap(circuit, GateDurations.cross_resonance())
        for qubit in range(circuit.num_qubits):
            assert schedule.total_duration() >= schedule.qubit_busy_time(qubit) - 1e-9
