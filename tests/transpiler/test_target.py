"""Tests for the Target design-point abstraction."""

import pickle

import pytest

from repro.core import Backend, make_backend
from repro.core.noise import NoiseModel
from repro.decomposition import get_basis
from repro.topology import corral_topology, square_lattice
from repro.transpiler import Target, make_target
from repro.transpiler.scheduling import GateDurations
from repro.workloads import ghz_circuit


class TestConstruction:
    def test_default_name(self):
        target = Target(square_lattice(4, 4), get_basis("cx"))
        assert "cx" in target.name
        assert target.num_qubits == 16

    def test_make_target(self):
        target = make_target(corral_topology(8, (1, 1)), "siswap", name="Corral")
        assert target.name == "Corral"
        assert target.basis.name == "siswap"

    def test_properties_row(self):
        target = make_target(square_lattice(4, 4), "cx")
        props = target.properties()
        assert props.num_qubits == 16
        assert props.average_connectivity == pytest.approx(3.0)

    def test_picklable(self):
        target = Target.from_names("corral-1-1", "sqiswap")
        clone = pickle.loads(pickle.dumps(target))
        assert clone.name == target.name
        assert clone.cache_key() == target.cache_key()


class TestFromNames:
    def test_exact_registry_name(self):
        target = Target.from_names("Corral1,1", "siswap")
        assert target.coupling_map.name == "Corral1,1"

    @pytest.mark.parametrize("spelling", ["corral-1-1", "corral_1_1", "CORRAL1,1"])
    def test_punctuation_insensitive(self, spelling):
        target = Target.from_names(spelling, "siswap")
        assert target.coupling_map.name == "Corral1,1"

    def test_basis_aliases(self):
        assert Target.from_names("Hypercube", "sqiswap").basis.name == "siswap"
        assert Target.from_names("Hypercube", "sqrt_iswap").basis.name == "siswap"

    def test_scales(self):
        small = Target.from_names("Tree", "siswap", scale="small")
        large = Target.from_names("Tree", "siswap", scale="large")
        assert small.num_qubits < large.num_qubits

    def test_unknown_topology_lists_options(self):
        with pytest.raises(ValueError, match="Corral1,1"):
            Target.from_names("moebius", "cx")

    def test_unknown_basis_rejected(self):
        with pytest.raises(ValueError):
            Target.from_names("Tree", "nosuchgate")


class TestDurationsAndNoise:
    def test_durations_default_to_modulator_preset(self):
        snail = Target.from_names("Corral1,1", "siswap")
        cr = Target.from_names("Heavy-Hex", "cx")
        assert snail.gate_durations().name == "snail"
        assert cr.gate_durations().name == "cr"

    def test_explicit_durations_win(self):
        custom = GateDurations(one_qubit=1.0, two_qubit_default=2.0, name="unit")
        target = Target.from_names("Tree", "siswap", durations=custom)
        assert target.gate_durations().name == "unit"

    def test_reliability_estimate_honours_explicit_durations(self):
        from repro.core import ReliabilityModel

        fast = GateDurations(one_qubit=1.0, two_qubit_default=2.0, iswap_full=2.0)
        target = Target.from_names("Tree", "siswap", durations=fast)
        preset = Target.from_names("Tree", "siswap")
        model = ReliabilityModel()
        circuit = ghz_circuit(6)
        assert (
            model.estimate(target, circuit, seed=0).duration_ns
            < model.estimate(preset, circuit, seed=0).duration_ns
        )

    def test_with_noise(self):
        base = Target.from_names("Tree", "siswap")
        noisy = base.with_noise(NoiseModel.random(base.coupling_map, seed=1))
        assert base.noise_model is None
        assert noisy.noise_model is not None
        assert noisy.cache_key() != base.cache_key()


class TestBackendInterop:
    def test_from_backend_round_trip(self):
        backend = make_backend(square_lattice(4, 4), "cx", name="Square-CX")
        target = Target.from_backend(backend)
        assert target.name == "Square-CX"
        assert target.basis.name == "cx"
        assert backend.to_target().cache_key() == target.cache_key()

    def test_from_backend_is_identity_on_targets(self):
        target = Target.from_names("Tree", "siswap")
        assert Target.from_backend(target) is target

    def test_backend_transpile_warns_and_matches_target(self):
        backend = Backend(square_lattice(4, 4), get_basis("siswap"))
        circuit = ghz_circuit(6)
        with pytest.warns(DeprecationWarning, match="Target"):
            legacy = backend.transpile(circuit, seed=4)
        modern = backend.to_target().transpile(circuit, seed=4)
        assert legacy.metrics == modern.metrics

    def test_target_transpile_shortcut(self):
        target = Target.from_names("Corral1,1", "siswap")
        result = target.transpile(ghz_circuit(6), seed=1)
        assert result.metrics.basis == "siswap"
        assert result.metrics.total_2q > 0


class TestCacheKey:
    def test_same_name_different_graph_distinct(self):
        first = make_target(square_lattice(4, 4), "cx", name="shared")
        second = make_target(corral_topology(8, (1, 1)), "cx", name="shared")
        assert first.cache_key() != second.cache_key()

    def test_deterministic(self):
        a = Target.from_names("Hypercube", "siswap")
        b = Target.from_names("Hypercube", "siswap")
        assert a.cache_key() == b.cache_key()
