"""Tests for batch transpilation through the experiment runtime."""

import pytest

from repro.runtime import ExperimentRunner, ResultCache
from repro.runtime.runner import serial_runner
from repro.transpiler import Target, circuit_fingerprint, transpile, transpile_batch
from repro.transpiler.batch import batch_cache_key
from repro.workloads import build_workload, ghz_circuit, quantum_volume_circuit


@pytest.fixture()
def circuits():
    return [
        quantum_volume_circuit(6, seed=1),
        ghz_circuit(8),
        build_workload("QFT", 5),
    ]


@pytest.fixture()
def target():
    return Target.from_names("Corral1,1", "siswap")


class TestBatchMatchesSequential:
    def test_results_aligned_and_identical(self, circuits, target):
        batch = transpile_batch(circuits, target, seed=7, optimization_level=2)
        assert len(batch) == len(circuits)
        for circuit, result in zip(circuits, batch):
            reference = transpile(circuit, target, seed=7, optimization_level=2)
            assert result.metrics == reference.metrics

    def test_runner_fanout_matches_serial(self, circuits, target):
        serial = transpile_batch(circuits, target, seed=3)
        with ExperimentRunner(parallel=True, max_workers=2) as runner:
            parallel = transpile_batch(circuits, target, seed=3, runner=runner)
        assert [r.metrics for r in parallel] == [r.metrics for r in serial]

    def test_legacy_backend_accepted(self, circuits):
        from repro.core import make_backend
        from repro.topology import get_topology

        backend = make_backend(get_topology("Corral1,1", "small"), "siswap")
        batch = transpile_batch(circuits[:1], backend, seed=1)
        assert batch[0].metrics.basis == "siswap"


class TestBatchCaching:
    def test_repeated_points_hit_cache(self, circuits, target):
        cache = ResultCache()
        runner = serial_runner(result_cache=cache)
        first = transpile_batch(circuits, target, seed=2, runner=runner)
        stats_after_first = cache.stats()
        second = transpile_batch(circuits, target, seed=2, runner=runner)
        stats_after_second = cache.stats()
        assert stats_after_second.hits == stats_after_first.hits + len(circuits)
        assert [r.metrics for r in second] == [r.metrics for r in first]

    def test_cache_hits_are_isolated_copies(self, circuits, target):
        """Mutating a returned result must not corrupt the cache."""
        runner = serial_runner(result_cache=ResultCache())
        first = transpile_batch(circuits[:1], target, seed=4, runner=runner)
        first[0].metrics.extra["poison"] = 1.0
        first[0].properties.pop("stage_circuits")
        first[0].properties["pass_timings"]["poison"] = 1.0
        second = transpile_batch(circuits[:1], target, seed=4, runner=runner)
        assert "poison" not in second[0].metrics.extra
        assert "stage_circuits" in second[0].properties
        assert "poison" not in second[0].properties["pass_timings"]

    def test_key_distinguishes_level_and_seed(self, circuits, target):
        base = batch_cache_key(circuits[0], target, 1, None, None, None, 0)
        assert batch_cache_key(circuits[0], target, 2, None, None, None, 0) != base
        assert batch_cache_key(circuits[0], target, 1, None, None, None, 5) != base
        assert batch_cache_key(circuits[1], target, 1, None, None, None, 0) != base


class TestCircuitFingerprint:
    def test_identical_construction_matches(self):
        assert circuit_fingerprint(ghz_circuit(6)) == circuit_fingerprint(ghz_circuit(6))

    def test_content_sensitive(self):
        assert circuit_fingerprint(ghz_circuit(6)) != circuit_fingerprint(ghz_circuit(7))
        assert circuit_fingerprint(
            quantum_volume_circuit(6, seed=1)
        ) != circuit_fingerprint(quantum_volume_circuit(6, seed=2))
