"""Tests for the VF2 perfect-layout pass."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.topology import CouplingMap, get_topology
from repro.transpiler import transpile
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes.vf2_layout import VF2Layout, interaction_graph
from repro.workloads import build_workload


def line_circuit(num_qubits: int) -> QuantumCircuit:
    """Nearest-neighbour CX chain: embeds into anything with a Hamiltonian path."""
    circuit = QuantumCircuit(num_qubits, name="line")
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def star_circuit(num_spokes: int) -> QuantumCircuit:
    """Qubit 0 interacts with every other qubit: needs a hub of matching degree."""
    circuit = QuantumCircuit(num_spokes + 1, name="star")
    for spoke in range(1, num_spokes + 1):
        circuit.cx(0, spoke)
    return circuit


class TestInteractionGraph:
    def test_nodes_cover_all_qubits(self):
        graph = interaction_graph(line_circuit(5))
        assert set(graph.nodes()) == set(range(5))

    def test_edge_weights_count_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(1, 2)
        graph = interaction_graph(circuit)
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1

    def test_single_qubit_gates_create_no_edges(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(1)
        assert interaction_graph(circuit).number_of_edges() == 0


class TestVF2Layout:
    def test_line_embeds_into_ring(self):
        device = CouplingMap.ring(6)
        properties = PropertySet()
        VF2Layout(device).run(line_circuit(5), properties)
        assert properties["perfect_layout"] is True
        layout = properties["layout"]
        for qubit in range(4):
            assert device.has_edge(layout[qubit], layout[qubit + 1])

    def test_star_does_not_embed_into_line(self):
        device = CouplingMap.line(6)
        properties = PropertySet()
        VF2Layout(device).run(star_circuit(4), properties)
        assert properties["perfect_layout"] is False
        # Fallback still produced a usable layout.
        assert "layout" in properties

    def test_strict_mode_raises_when_no_embedding(self):
        device = CouplingMap.line(6)
        with pytest.raises(RuntimeError):
            VF2Layout(device, strict=True).run(star_circuit(4), PropertySet())

    def test_circuit_larger_than_device_raises(self):
        with pytest.raises(ValueError):
            VF2Layout(CouplingMap.line(3)).run(line_circuit(5), PropertySet())

    def test_gateless_circuit_gets_trivial_layout(self):
        device = CouplingMap.line(4)
        circuit = QuantumCircuit(3)
        circuit.h(0)
        properties = PropertySet()
        VF2Layout(device).run(circuit, properties)
        assert properties["perfect_layout"] is True
        assert len(properties["layout"]) == 3

    def test_unused_qubits_receive_seats(self):
        # Only qubits 1 and 2 interact; qubit 0 is idle but still needs a seat.
        device = CouplingMap.line(4)
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        properties = PropertySet()
        VF2Layout(device).run(circuit, properties)
        layout = properties["layout"]
        physical = [layout[q] for q in range(3)]
        assert len(set(physical)) == 3

    def test_star_embeds_into_corral(self):
        """The paper's observation: rich SNAIL topologies admit SWAP-free layouts."""
        device = get_topology("Corral1,1", scale="small")
        properties = PropertySet()
        VF2Layout(device).run(star_circuit(4), properties)
        assert properties["perfect_layout"] is True


class TestVF2InTranspileFlow:
    def test_vf2_layout_method_available(self):
        device = get_topology("Corral1,2", scale="small")
        circuit = build_workload("GHZ", 8)
        result = transpile(circuit, device, basis_name="siswap", layout_method="vf2")
        assert result.metrics.total_2q > 0

    def test_perfect_embedding_needs_zero_swaps(self):
        device = get_topology("Corral1,1", scale="small")
        circuit = line_circuit(8)
        result = transpile(circuit, device, basis_name="siswap", layout_method="vf2")
        assert result.properties.get("perfect_layout") is True
        assert result.metrics.total_swaps == 0

    def test_vf2_never_worse_than_dense_on_swap_free_cases(self):
        device = get_topology("Hypercube", scale="small")
        circuit = line_circuit(10)
        vf2 = transpile(circuit, device, basis_name="siswap", layout_method="vf2")
        dense = transpile(circuit, device, basis_name="siswap", layout_method="dense")
        assert vf2.metrics.total_swaps <= dense.metrics.total_swaps
