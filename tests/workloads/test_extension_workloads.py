"""Tests for the extension workloads (Bernstein-Vazirani, VQE ansatz, W state)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.statevector import StatevectorSimulator
from repro.topology import get_topology
from repro.transpiler import transpile
from repro.workloads import (
    EXTENSION_WORKLOADS,
    available_workloads,
    bernstein_vazirani_circuit,
    build_workload,
    hardware_efficient_ansatz,
    w_state_circuit,
)


class TestBernsteinVazirani:
    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(1)

    def test_rejects_wrong_secret_length(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(4, secret=[1, 0])

    def test_rejects_non_binary_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(3, secret=[2, 0])

    def test_recovers_the_secret(self):
        secret = [1, 0, 1, 1]
        circuit = bernstein_vazirani_circuit(5, secret=secret)
        probabilities = StatevectorSimulator().probabilities(circuit)
        # Data qubits (little-endian bits 0..3) must read the secret with
        # certainty; trace out the ancilla by summing over its bit.
        marginals = np.zeros(16)
        for index, probability in enumerate(probabilities):
            marginals[index & 0b1111] += probability
        expected_index = sum(bit << position for position, bit in enumerate(secret))
        assert marginals[expected_index] == pytest.approx(1.0)

    def test_cx_count_equals_secret_weight(self):
        circuit = bernstein_vazirani_circuit(6, secret=[1, 1, 0, 1, 0])
        assert circuit.count_ops().get("cx", 0) == 3

    def test_random_secret_is_deterministic_in_seed(self):
        first = bernstein_vazirani_circuit(6, seed=9)
        second = bernstein_vazirani_circuit(6, seed=9)
        assert first.metadata["secret"] == second.metadata["secret"]

    @given(width=st.integers(min_value=2, max_value=8), seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_star_interaction_pattern(self, width, seed):
        circuit = bernstein_vazirani_circuit(width, seed=seed)
        ancilla = width - 1
        for pair in circuit.two_qubit_interactions():
            assert ancilla in pair


class TestHardwareEfficientAnsatz:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1)
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, layers=0)
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, entangler="magic")

    def test_entangling_gate_count_with_ring(self):
        circuit = hardware_efficient_ansatz(5, layers=3, ring=True)
        assert circuit.count_ops()["cx"] == 3 * 5

    def test_entangling_gate_count_without_ring(self):
        circuit = hardware_efficient_ansatz(5, layers=3, ring=False)
        assert circuit.count_ops()["cx"] == 3 * 4

    def test_siswap_entangler(self):
        circuit = hardware_efficient_ansatz(4, layers=1, entangler="siswap")
        assert "siswap" in circuit.count_ops()
        assert "cx" not in circuit.count_ops()

    def test_rotation_count(self):
        circuit = hardware_efficient_ansatz(4, layers=2)
        # (layers + 1) rotation layers, each ry + rz per qubit.
        assert circuit.count_ops()["ry"] == 3 * 4
        assert circuit.count_ops()["rz"] == 3 * 4

    def test_angles_deterministic_in_seed(self):
        a = hardware_efficient_ansatz(4, seed=3)
        b = hardware_efficient_ansatz(4, seed=3)
        assert [inst.gate.params for inst in a] == [inst.gate.params for inst in b]


class TestWState:
    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            w_state_circuit(1)

    @pytest.mark.parametrize("width", [2, 3, 5, 7])
    def test_prepares_uniform_single_excitation_superposition(self, width):
        state = StatevectorSimulator().run(w_state_circuit(width))
        probabilities = np.abs(state) ** 2
        for index, probability in enumerate(probabilities):
            if bin(index).count("1") == 1:
                assert probability == pytest.approx(1.0 / width, abs=1e-9)
            else:
                assert probability == pytest.approx(0.0, abs=1e-9)

    def test_two_qubit_gate_count_is_linear(self):
        circuit = w_state_circuit(8)
        assert circuit.two_qubit_gate_count() == 2 * 7


class TestRegistryIntegration:
    def test_extension_workloads_registered(self):
        names = available_workloads()
        for name in EXTENSION_WORKLOADS:
            assert name in names

    @pytest.mark.parametrize("name", EXTENSION_WORKLOADS)
    def test_build_by_name(self, name):
        circuit = build_workload(name, 6, seed=1)
        assert circuit.num_qubits == 6

    @pytest.mark.parametrize("name", EXTENSION_WORKLOADS)
    def test_extension_workloads_transpile_onto_snail_topology(self, name):
        device = get_topology("Tree", scale="small")
        circuit = build_workload(name, 8, seed=2)
        result = transpile(circuit, device, basis_name="siswap")
        assert result.metrics.total_2q >= circuit.two_qubit_gate_count() > 0
