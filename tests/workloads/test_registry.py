"""Tests for the workload registry."""

import pytest

from repro.circuits import QuantumCircuit
from repro.workloads import (
    PAPER_WORKLOADS,
    available_workloads,
    build_workload,
    register_workload,
)


class TestRegistry:
    def test_paper_workloads_all_registered(self):
        available = available_workloads()
        for name in PAPER_WORKLOADS:
            assert name in available

    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_build_each_paper_workload(self, name):
        circuit = build_workload(name, 8, seed=1)
        assert isinstance(circuit, QuantumCircuit)
        assert circuit.num_qubits <= 8
        assert circuit.two_qubit_gate_count() > 0 or circuit.num_nonlocal_gates() > 0

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("Shor", 8)

    def test_register_custom_workload(self):
        def builder(num_qubits, seed):
            circuit = QuantumCircuit(num_qubits, name="custom")
            circuit.h(0)
            return circuit

        register_workload("CustomTest", builder)
        try:
            circuit = build_workload("CustomTest", 3)
            assert circuit.name == "custom"
            with pytest.raises(ValueError):
                register_workload("CustomTest", builder)
            register_workload("CustomTest", builder, overwrite=True)
        finally:
            from repro.workloads import registry

            registry._BUILDERS.pop("CustomTest", None)

    def test_workloads_scale_with_width(self):
        small = build_workload("QFT", 6)
        large = build_workload("QFT", 12)
        assert large.two_qubit_gate_count() > small.two_qubit_gate_count()
