"""Tests for the benchmark workload generators (construction + semantics)."""

import numpy as np
import pytest

from repro.simulator import circuit_unitary, statevector
from repro.workloads import (
    adder_circuit_for_width,
    adder_register_layout,
    cdkm_adder_circuit,
    ghz_circuit,
    qaoa_vanilla_circuit,
    qft_circuit,
    qft_unitary,
    quantum_volume_circuit,
    sk_couplings,
    tim_hamiltonian_circuit,
)


class TestQuantumVolume:
    def test_width_and_layer_structure(self):
        circuit = quantum_volume_circuit(8, seed=0)
        assert circuit.num_qubits == 8
        # depth layers x floor(n/2) SU(4) blocks.
        assert circuit.two_qubit_gate_count() == 8 * 4

    def test_custom_depth(self):
        circuit = quantum_volume_circuit(6, depth=3, seed=1)
        assert circuit.two_qubit_gate_count() == 3 * 3

    def test_odd_width_leaves_one_idle_per_layer(self):
        circuit = quantum_volume_circuit(5, seed=2)
        assert circuit.two_qubit_gate_count() == 5 * 2

    def test_seed_reproducibility(self):
        a = quantum_volume_circuit(4, seed=7)
        b = quantum_volume_circuit(4, seed=7)
        assert np.allclose(circuit_unitary(a), circuit_unitary(b))

    def test_different_seeds_differ(self):
        a = quantum_volume_circuit(4, seed=1)
        b = quantum_volume_circuit(4, seed=2)
        assert not np.allclose(circuit_unitary(a), circuit_unitary(b))

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            quantum_volume_circuit(1)


class TestQFT:
    def test_gate_count(self):
        circuit = qft_circuit(6)
        counts = circuit.count_ops()
        assert counts["h"] == 6
        assert counts["cp"] == 6 * 5 // 2

    def test_qft_with_swaps_matches_dft_matrix(self):
        for width in (2, 3, 4):
            circuit = qft_circuit(width, do_swaps=True)
            assert np.allclose(circuit_unitary(circuit), qft_unitary(width), atol=1e-9)

    def test_qft_without_swaps_is_bit_reversed_dft(self):
        width = 3
        circuit = qft_circuit(width, do_swaps=False)
        with_swaps = qft_circuit(width, do_swaps=True)
        # Appending the reversal swaps must recover the DFT.
        for qubit in range(width // 2):
            circuit.swap(qubit, width - 1 - qubit)
        assert np.allclose(circuit_unitary(circuit), circuit_unitary(with_swaps), atol=1e-9)

    def test_approximation_drops_small_angles(self):
        exact = qft_circuit(8)
        approx = qft_circuit(8, approximation_degree=5)
        assert approx.two_qubit_gate_count() < exact.two_qubit_gate_count()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestQAOA:
    def test_fully_connected_interaction_graph(self):
        circuit = qaoa_vanilla_circuit(6, seed=0)
        pairs = set(circuit.two_qubit_interactions())
        assert len(pairs) == 15  # complete graph K6

    def test_couplings_are_plus_minus_one(self):
        couplings = sk_couplings(5, seed=3)
        assert set(couplings.values()) <= {-1.0, 1.0}
        assert len(couplings) == 10

    def test_layers_scale_gate_count(self):
        one = qaoa_vanilla_circuit(5, layers=1, seed=0)
        two = qaoa_vanilla_circuit(5, layers=2, seed=0)
        assert two.two_qubit_gate_count() == 2 * one.two_qubit_gate_count()

    def test_fixed_angles_accepted(self):
        circuit = qaoa_vanilla_circuit(4, seed=0, gamma=0.3, beta=0.2)
        assert circuit.num_qubits == 4

    def test_seed_controls_couplings(self):
        assert sk_couplings(4, seed=1) != sk_couplings(4, seed=2)

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            qaoa_vanilla_circuit(1)


class TestTIMHamiltonian:
    def test_nearest_neighbour_interactions_only(self):
        circuit = tim_hamiltonian_circuit(7)
        for pair in circuit.two_qubit_interactions():
            assert abs(pair[0] - pair[1]) == 1

    def test_trotter_steps_scale_gate_count(self):
        one = tim_hamiltonian_circuit(6, time_steps=1)
        three = tim_hamiltonian_circuit(6, time_steps=3)
        assert three.two_qubit_gate_count() == 3 * one.two_qubit_gate_count()

    def test_zero_field_conserves_z_basis_weight(self):
        # With h=0 the evolution is diagonal: starting from |0...0> the
        # state stays |0...0> up to phase.
        circuit = tim_hamiltonian_circuit(4, field_strength=0.0)
        # remove the initial Hadamard preparation layer for this check
        from repro.circuits import QuantumCircuit

        stripped = QuantumCircuit(4)
        for instruction in list(circuit)[4:]:
            stripped.append(instruction.gate, instruction.qubits)
        state = statevector(stripped)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            tim_hamiltonian_circuit(1)


class TestAdder:
    def test_register_layout(self):
        carry_in, a_reg, b_reg, carry_out = adder_register_layout(3)
        assert carry_in == 0
        assert list(a_reg) == [1, 2, 3]
        assert list(b_reg) == [4, 5, 6]
        assert carry_out == 7

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (2, 3), (3, 3), (1, 2)])
    def test_two_bit_addition_is_correct(self, a, b):
        """Simulate the adder on computational basis states."""
        num_state = 2
        circuit = cdkm_adder_circuit(num_state)
        carry_in, a_reg, b_reg, carry_out = adder_register_layout(num_state)
        from repro.circuits import QuantumCircuit

        prepared = QuantumCircuit(circuit.num_qubits)
        for bit, qubit in enumerate(a_reg):
            if (a >> bit) & 1:
                prepared.x(qubit)
        for bit, qubit in enumerate(b_reg):
            if (b >> bit) & 1:
                prepared.x(qubit)
        prepared.compose(circuit)
        state = statevector(prepared)
        outcome = int(np.argmax(np.abs(state)))
        result_bits = sum(((outcome >> q) & 1) << i for i, q in enumerate(b_reg))
        carry_bit = (outcome >> carry_out) & 1
        assert result_bits + (carry_bit << num_state) == a + b
        # The a register must be restored.
        a_bits = sum(((outcome >> q) & 1) << i for i, q in enumerate(a_reg))
        assert a_bits == a

    def test_width_helper(self):
        circuit = adder_circuit_for_width(10)
        assert circuit.num_qubits == 10

    def test_width_helper_rounds_down(self):
        assert adder_circuit_for_width(11).num_qubits == 10

    def test_contains_toffolis(self):
        assert cdkm_adder_circuit(3).count_ops()["ccx"] > 0

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            adder_circuit_for_width(3)


class TestGHZ:
    def test_linear_structure(self):
        circuit = ghz_circuit(6)
        assert circuit.count_ops() == {"h": 1, "cx": 5}

    def test_state_is_ghz(self):
        state = statevector(ghz_circuit(5))
        assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(state[-1]) == pytest.approx(1 / np.sqrt(2))

    def test_log_depth_variant_same_state(self):
        linear = statevector(ghz_circuit(6, linear=True))
        tree = statevector(ghz_circuit(6, linear=False))
        assert np.allclose(np.abs(linear), np.abs(tree))

    def test_log_depth_variant_is_shallower(self):
        assert ghz_circuit(8, linear=False).depth() < ghz_circuit(8, linear=True).depth()

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            ghz_circuit(0)
